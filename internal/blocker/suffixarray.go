package blocker

import (
	"fmt"
	"sort"

	"matchcatcher/internal/table"
	"matchcatcher/internal/tokenize"
)

// SuffixArray implements suffix-array blocking (Section 2's list): each
// tuple's key contributes all suffixes of length at least MinSuffix; two
// tuples block together when they share a suffix, unless the suffix is so
// common that its bucket exceeds MaxBucket (the standard frequency prune
// that keeps very short/common suffixes from flooding the output).
type SuffixArray struct {
	ID        string
	Key       KeyFunc
	MinSuffix int // minimum suffix length in characters (default 4)
	MaxBucket int // drop suffix buckets larger than this (default 50)
}

// NewSuffixArray returns a suffix-array blocker on the normalized value of
// attr with the standard defaults.
func NewSuffixArray(attr string) *SuffixArray {
	return &SuffixArray{ID: "suffix_" + attr, Key: AttrKey(attr)}
}

// Name implements Blocker.
func (s *SuffixArray) Name() string { return s.ID }

// Block implements Blocker.
func (s *SuffixArray) Block(a, b *table.Table) (*PairSet, error) {
	if s.Key == nil {
		return nil, fmt.Errorf("blocker %s: nil key function", s.ID)
	}
	minLen := s.MinSuffix
	if minLen <= 0 {
		minLen = 4
	}
	maxBucket := s.MaxBucket
	if maxBucket <= 0 {
		maxBucket = 50
	}
	type bucket struct {
		a, b []int
	}
	buckets := map[string]*bucket{}
	add := func(t *table.Table, row int, sideA bool) {
		key := tokenize.Normalize(s.Key(t, row))
		if key == "" {
			return
		}
		r := []rune(key)
		if len(r) < minLen {
			return
		}
		for start := 0; start+minLen <= len(r); start++ {
			suf := string(r[start:])
			bk := buckets[suf]
			if bk == nil {
				bk = &bucket{}
				buckets[suf] = bk
			}
			if sideA {
				bk.a = append(bk.a, row)
			} else {
				bk.b = append(bk.b, row)
			}
		}
	}
	for i := 0; i < a.NumRows(); i++ {
		add(a, i, true)
	}
	for j := 0; j < b.NumRows(); j++ {
		add(b, j, false)
	}
	out := NewPairSet()
	for _, bk := range buckets {
		if len(bk.a)+len(bk.b) > maxBucket {
			continue
		}
		for _, ra := range bk.a {
			for _, rb := range bk.b {
				out.Add(ra, rb)
			}
		}
	}
	return out, nil
}

// Canopy implements canopy-clustering blocking (Section 2's list): tuples
// are greedily grouped into canopies around randomly ordered seed tuples
// using a cheap token-overlap distance; a pair survives when both tuples
// fall in a common canopy. Loose must not be smaller than Tight.
type Canopy struct {
	ID    string
	Attr  string
	Tight float64 // tuples this similar to the seed leave the pool (default 0.6)
	Loose float64 // tuples this similar join the canopy (default 0.3)
}

// NewCanopy returns a canopy blocker over word-level Jaccard on attr.
func NewCanopy(attr string) *Canopy {
	return &Canopy{ID: "canopy_" + attr, Attr: attr, Tight: 0.6, Loose: 0.3}
}

// Name implements Blocker.
func (c *Canopy) Name() string { return c.ID }

// Block implements Blocker.
func (c *Canopy) Block(a, b *table.Table) (*PairSet, error) {
	if c.Loose > c.Tight {
		return nil, fmt.Errorf("blocker %s: loose threshold %g exceeds tight %g", c.ID, c.Loose, c.Tight)
	}
	type rec struct {
		side int // 0 = A, 1 = B
		row  int
		toks []string
	}
	var recs []rec
	ja := a.AttrIndex(c.Attr)
	jb := b.AttrIndex(c.Attr)
	if ja < 0 || jb < 0 {
		return nil, fmt.Errorf("blocker %s: attribute %q missing from a schema", c.ID, c.Attr)
	}
	for i := 0; i < a.NumRows(); i++ {
		recs = append(recs, rec{0, i, tokenize.WordSet(a.Value(i, ja))})
	}
	for j := 0; j < b.NumRows(); j++ {
		recs = append(recs, rec{1, j, tokenize.WordSet(b.Value(j, jb))})
	}
	// Inverted index for cheap candidate lookup per seed.
	idx := map[string][]int{}
	for i, r := range recs {
		for _, tok := range r.toks {
			idx[tok] = append(idx[tok], i)
		}
	}
	inPool := make([]bool, len(recs))
	for i := range inPool {
		inPool[i] = true
	}
	out := NewPairSet()
	// Deterministic seed order: records as given (the classic algorithm
	// picks random seeds; fixed order keeps runs reproducible).
	counts := map[int]int{}
	var touched []int // candidate indices with counts[i] > 0, reset per seed
	for seed := range recs {
		if !inPool[seed] {
			continue
		}
		inPool[seed] = false
		st := recs[seed]
		if len(st.toks) == 0 {
			continue
		}
		for _, tok := range st.toks {
			for _, i := range idx[tok] {
				if counts[i] == 0 {
					touched = append(touched, i)
				}
				counts[i]++
			}
		}
		// Candidates in ascending record order, not map order: canopy
		// membership is per-candidate so the emitted pair *set* never
		// depended on order, but deterministic iteration keeps the
		// canopy slices (and any future tracing of them) reproducible.
		sort.Ints(touched)
		var canopyA, canopyB []int
		if st.side == 0 {
			canopyA = append(canopyA, st.row)
		} else {
			canopyB = append(canopyB, st.row)
		}
		for _, i := range touched {
			o := counts[i]
			if i == seed {
				continue
			}
			r := recs[i]
			sim := float64(o) / float64(len(st.toks)+len(r.toks)-o)
			if sim < c.Loose {
				continue
			}
			if r.side == 0 {
				canopyA = append(canopyA, r.row)
			} else {
				canopyB = append(canopyB, r.row)
			}
			if sim >= c.Tight {
				inPool[i] = false
			}
		}
		for _, ra := range canopyA {
			for _, rb := range canopyB {
				out.Add(ra, rb)
			}
		}
		// Reset only the entries this seed touched (cheaper than
		// clearing the whole map when canopies are small).
		for _, i := range touched {
			delete(counts, i)
		}
		touched = touched[:0]
	}
	return out, nil
}
