package blocker

import (
	"strconv"
	"sync"
	"sync/atomic"

	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// Blockers predate the telemetry subsystem and carry no options struct,
// so instrumentation reports to package-level state: a registry (the
// process default unless SetMetrics installs another), an optional trace
// parent span, and an optional provenance recorder. Tests inject private
// registries; Disabled() switches blocker telemetry off.
var (
	metricsReg  atomic.Pointer[telemetry.Registry]
	traceParent atomic.Pointer[telemetry.TraceSpan]
	provenance  atomic.Pointer[telemetry.Provenance]
)

// SetMetrics routes blocker telemetry to r (nil restores the default).
func SetMetrics(r *telemetry.Registry) { metricsReg.Store(r) }

func metrics() *telemetry.Registry { return telemetry.Or(metricsReg.Load()) }

// SetTrace installs a parent trace span: every Block call opens a
// blocker.block child span under it (per rule / per union member, so
// composite blockers trace as trees). Nil disables block tracing.
func SetTrace(s *telemetry.TraceSpan) { traceParent.Store(s) }

// SetProvenance installs a provenance recorder: every Block call records
// a kept/dropped decision for each watched pair. Nil disables.
func SetProvenance(p *telemetry.Provenance) { provenance.Store(p) }

// hookMu serializes BlockScoped calls: the trace and provenance hooks
// are package-level (blockers predate options structs), so two sessions
// blocking concurrently with scoped hooks would cross-wire their spans
// and lineages. Holding the mutex for the duration of the Block call
// trades blocking throughput for isolation; the join — the debugger's
// dominant cost — is unaffected.
var hookMu sync.Mutex

// BlockScoped runs q.Block with the package-level trace and provenance
// hooks pointed at this call's span and recorder, restoring them to nil
// afterwards. Calls are serialized against each other so concurrent
// sessions cannot contaminate each other's traces or watch-lists — the
// hook-scoping discipline mcdebug pioneered, made safe for a
// session-hosting server. Either hook may be nil.
func BlockScoped(q Blocker, a, b *table.Table, span *telemetry.TraceSpan, prov *telemetry.Provenance) (*PairSet, error) {
	hookMu.Lock()
	defer hookMu.Unlock()
	SetTrace(span)
	SetProvenance(prov)
	defer SetTrace(nil)
	defer SetProvenance(nil)
	return q.Block(a, b)
}

// blockObs is the per-Block observation handle returned by startBlock.
type blockObs struct {
	name string
	span telemetry.Span
	ts   *telemetry.TraceSpan
}

// startBlock opens the per-blocker latency span and trace span.
func startBlock(name string) blockObs {
	return blockObs{
		name: name,
		span: metrics().Start("blocker.block", telemetry.L("blocker", name)),
		ts:   traceParent.Load().Child("blocker.block", telemetry.L("blocker", name)),
	}
}

// done records one finished Block call: how many pairs survived under
// this blocker/rule, how long the blocking took, and — for every watched
// pair — whether this blocker kept or dropped it.
func (o blockObs) done(out *PairSet) {
	r := metrics()
	n := out.Len()
	r.Counter("mc_blocker_pairs_total", telemetry.L("blocker", o.name)).Add(int64(n))
	r.Counter("mc_blocker_runs_total", telemetry.L("blocker", o.name)).Inc()
	o.ts.SetAttrInt("pairs_out", int64(n))
	o.ts.End()
	o.span.End()
	if prov := provenance.Load(); prov.Active() {
		for _, w := range prov.WatchedPairs() {
			ev := "dropped"
			if out.Contains(w[0], w[1]) {
				ev = "kept"
			}
			prov.Record(w[0], w[1], "blocker", ev,
				telemetry.L("blocker", o.name),
				telemetry.L("out_size", strconv.Itoa(n)))
		}
	}
}
