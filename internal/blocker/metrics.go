package blocker

import (
	"sync/atomic"

	"matchcatcher/internal/telemetry"
)

// Blockers predate the telemetry subsystem and carry no options struct,
// so instrumentation reports to a package-level registry: the process
// default unless SetMetrics installs another (tests inject a private
// registry; Disabled() switches blocker telemetry off).
var metricsReg atomic.Pointer[telemetry.Registry]

// SetMetrics routes blocker telemetry to r (nil restores the default).
func SetMetrics(r *telemetry.Registry) { metricsReg.Store(r) }

func metrics() *telemetry.Registry { return telemetry.Or(metricsReg.Load()) }

// observeBlock records one finished Block call: how many pairs survived
// under this blocker/rule and how long the blocking took.
func observeBlock(name string, pairs int, span telemetry.Span) {
	r := metrics()
	r.Counter("mc_blocker_pairs_total", telemetry.L("blocker", name)).Add(int64(pairs))
	r.Counter("mc_blocker_runs_total", telemetry.L("blocker", name)).Inc()
	span.End()
}

// startBlock opens the per-blocker latency span.
func startBlock(name string) telemetry.Span {
	return metrics().Start("blocker.block", telemetry.L("blocker", name))
}
