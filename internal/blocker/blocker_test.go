package blocker

import (
	"testing"

	"matchcatcher/internal/table"
)

// figure1Tables returns tables A and B from the paper's Figure 1.
func figure1Tables() (*table.Table, *table.Table) {
	a := table.MustNew("A", []string{"Name", "City", "Age"})
	a.MustAppend([]string{"Dave Smith", "Altanta", "18"})       // a1
	a.MustAppend([]string{"Daniel Smith", "LA", "18"})          // a2
	a.MustAppend([]string{"Joe Welson", "New York", "25"})      // a3
	a.MustAppend([]string{"Charles Williams", "Chicago", "45"}) // a4
	a.MustAppend([]string{"Charlie William", "Atlanta", "28"})  // a5
	b := table.MustNew("B", []string{"Name", "City", "Age"})
	b.MustAppend([]string{"David Smith", "Atlanta", "18"})      // b1
	b.MustAppend([]string{"Joe Wilson", "NY", "25"})            // b2
	b.MustAppend([]string{"Daniel W. Smith", "LA", "30"})       // b3
	b.MustAppend([]string{"Charles Williams", "Chicago", "45"}) // b4
	return a, b
}

func pairsOf(t *testing.T, b Blocker, ta, tb *table.Table) map[Pair]bool {
	t.Helper()
	c, err := b.Block(ta, tb)
	if err != nil {
		t.Fatalf("%s.Block: %v", b.Name(), err)
	}
	out := map[Pair]bool{}
	for _, p := range c.SortedPairs() {
		out[p] = true
	}
	return out
}

// TestQ1Figure1 reproduces C1 from the paper: attribute equivalence on
// City yields exactly (a2,b3), (a4,b4), (a5,b1).
func TestQ1Figure1(t *testing.T) {
	a, b := figure1Tables()
	got := pairsOf(t, NewAttrEquivalence("City"), a, b)
	want := map[Pair]bool{{1, 2}: true, {3, 3}: true, {4, 0}: true}
	if len(got) != len(want) {
		t.Fatalf("C1 = %v, want %v", got, want)
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

// TestQ2Figure1 reproduces C2: Q1 union lastword(Name) equality adds
// (a1,b1), (a1,b3), (a2,b1), (a2,b3).
func TestQ2Figure1(t *testing.T) {
	a, b := figure1Tables()
	q2 := NewUnion("Q2",
		NewAttrEquivalence("City"),
		&Hash{ID: "lastword_name", Key: LastWordKey("Name")},
	)
	got := pairsOf(t, q2, a, b)
	want := []Pair{{0, 0}, {0, 2}, {1, 0}, {1, 2}, {3, 3}, {4, 0}}
	if len(got) != len(want) {
		t.Fatalf("C2 has %d pairs (%v), want %d", len(got), got, len(want))
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

// TestQ3Figure1 reproduces C3: City equality union
// ed(lastword(Name)) <= 2, which additionally keeps (a3,b2) (Welson vs
// Wilson) and the (a5,*) Williams/William pairs.
func TestQ3Figure1(t *testing.T) {
	a, b := figure1Tables()
	q3 := NewUnion("Q3",
		NewAttrEquivalence("City"),
		NewEditDistance("Name", TransformLastWord, 2),
	)
	got := pairsOf(t, q3, a, b)
	// All of C2 plus (a3,b2), (a5,b4), (a4 pairs already there), plus
	// William~Williams matches within distance 2.
	mustHave := []Pair{{0, 0}, {0, 2}, {1, 0}, {1, 2}, {2, 1}, {3, 3}, {4, 0}, {4, 3}}
	for _, p := range mustHave {
		if !got[p] {
			t.Errorf("C3 missing pair %v", p)
		}
	}
	// The true match (a3,b2) killed by Q1 and Q2 must now survive.
	if !got[(Pair{2, 1})] {
		t.Error("Q3 should keep (a3,b2)")
	}
}

func TestHashSkipsMissingKeys(t *testing.T) {
	a := table.MustNew("A", []string{"k"})
	a.MustAppend([]string{""})
	a.MustAppend([]string{"x"})
	b := table.MustNew("B", []string{"k"})
	b.MustAppend([]string{""})
	b.MustAppend([]string{"x"})
	got := pairsOf(t, NewAttrEquivalence("k"), a, b)
	if len(got) != 1 || !got[(Pair{1, 1})] {
		t.Errorf("missing keys joined: %v", got)
	}
}

func TestHashNormalizesCase(t *testing.T) {
	a := table.MustNew("A", []string{"k"})
	a.MustAppend([]string{"New  York"})
	b := table.MustNew("B", []string{"k"})
	b.MustAppend([]string{"new york"})
	got := pairsOf(t, NewAttrEquivalence("k"), a, b)
	if !got[(Pair{0, 0})] {
		t.Error("case/whitespace-normalized keys should match")
	}
}

func TestHashNilKey(t *testing.T) {
	a, b := figure1Tables()
	if _, err := (&Hash{ID: "bad"}).Block(a, b); err == nil {
		t.Error("want error for nil key func")
	}
}

func TestSortedNeighborhood(t *testing.T) {
	a := table.MustNew("A", []string{"k"})
	for _, v := range []string{"aa", "cc", "ee"} {
		a.MustAppend([]string{v})
	}
	b := table.MustNew("B", []string{"k"})
	for _, v := range []string{"ab", "cd", "zz"} {
		b.MustAppend([]string{v})
	}
	sn := &SortedNeighborhood{ID: "sn", Key: AttrKey("k"), Window: 2}
	got := pairsOf(t, sn, a, b)
	// Sorted order: aa(a0) ab(b0) cc(a1) cd(b1) ee(a2) zz(b2). A sliding
	// window of 2 emits every adjacent cross-table pair.
	want := []Pair{{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}}
	if len(got) != len(want) {
		t.Fatalf("sn pairs = %v", got)
	}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing %v", p)
		}
	}
	// Tables alternate in sorted order, so distance-2 neighbours are
	// same-table and window 3 adds nothing; window 4 reaches distance 3,
	// adding (a0,b1), (a2,b0), (a1,b2).
	got3 := pairsOf(t, &SortedNeighborhood{ID: "sn3", Key: AttrKey("k"), Window: 3}, a, b)
	if len(got3) != 5 {
		t.Errorf("window 3 pair count = %d, want 5", len(got3))
	}
	got4 := pairsOf(t, &SortedNeighborhood{ID: "sn4", Key: AttrKey("k"), Window: 4}, a, b)
	if len(got4) != 8 || !got4[(Pair{0, 1})] || !got4[(Pair{2, 0})] || !got4[(Pair{1, 2})] {
		t.Errorf("window 4 pairs = %v", got4)
	}
}

func TestSortedNeighborhoodValidation(t *testing.T) {
	a, b := figure1Tables()
	if _, err := (&SortedNeighborhood{ID: "x", Key: AttrKey("City"), Window: 1}).Block(a, b); err == nil {
		t.Error("want error for window < 2")
	}
	if _, err := (&SortedNeighborhood{ID: "x", Window: 3}).Block(a, b); err == nil {
		t.Error("want error for nil key")
	}
}

func TestUnionPropagatesErrors(t *testing.T) {
	a, b := figure1Tables()
	u := NewUnion("u", &Hash{ID: "bad"})
	if _, err := u.Block(a, b); err == nil {
		t.Error("union should propagate member error")
	}
}
