package metrics

import (
	"strings"
	"testing"

	"matchcatcher/internal/blocker"
)

func set(pairs ...[2]int) *blocker.PairSet {
	s := blocker.NewPairSet()
	for _, p := range pairs {
		s.Add(p[0], p[1])
	}
	return s
}

func TestRecall(t *testing.T) {
	gold := set([2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2}, [2]int{3, 3})
	c := set([2]int{0, 0}, [2]int{1, 1}, [2]int{9, 9})
	if got := Recall(gold, c); got != 0.5 {
		t.Errorf("recall = %g", got)
	}
	if got := Recall(blocker.NewPairSet(), c); got != 0 {
		t.Errorf("empty gold recall = %g", got)
	}
}

func TestIntersectionAndCountIn(t *testing.T) {
	x := set([2]int{0, 0}, [2]int{1, 1})
	y := set([2]int{1, 1}, [2]int{2, 2})
	if got := Intersection(x, y); got != 1 {
		t.Errorf("intersection = %d", got)
	}
	pairs := []blocker.Pair{{A: 1, B: 1}, {A: 5, B: 5}}
	if got := CountIn(pairs, y); got != 1 {
		t.Errorf("CountIn = %d", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(820, 1267); got != "64.7" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "-" {
		t.Errorf("Pct div0 = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Headers: []string{"Dataset", "C", "M_D"}}
	tab.Add("A-G", 8388, 291)
	tab.Add("F-Z", 115, 47)
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Dataset") || !strings.Contains(lines[2], "8388") {
		t.Errorf("table:\n%s", s)
	}
	// Columns align: "C" column starts at the same offset in all rows.
	off := strings.Index(lines[0], "C")
	if lines[2][off-1] != ' ' {
		t.Errorf("misaligned:\n%s", s)
	}
}
