// Package metrics provides the evaluation arithmetic of Section 6 (recall,
// the M_D / M_E / F counters of Table 3) and plain-text table rendering
// for the experiment reports.
package metrics

import (
	"fmt"
	"io"
	"strings"

	"matchcatcher/internal/blocker"
)

// Recall is |M ∩ C| / |M| (Definition 2.1). It returns 0 for an empty M.
func Recall(gold, c *blocker.PairSet) float64 {
	if gold.Len() == 0 {
		return 0
	}
	kept := 0
	gold.ForEach(func(a, b int) {
		if c.Contains(a, b) {
			kept++
		}
	})
	return float64(kept) / float64(gold.Len())
}

// Intersection counts |X ∩ Y| for two pair sets.
func Intersection(x, y *blocker.PairSet) int {
	n := 0
	x.ForEach(func(a, b int) {
		if y.Contains(a, b) {
			n++
		}
	})
	return n
}

// CountIn counts how many of the pairs are members of the set.
func CountIn(pairs []blocker.Pair, s *blocker.PairSet) int {
	n := 0
	for _, p := range pairs {
		if s.Contains(p.A, p.B) {
			n++
		}
	}
	return n
}

// Pct renders a ratio as a percentage with one decimal ("64.7").
func Pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(num)/float64(den))
}

// Table is a plain-text table with aligned columns.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns and a header rule.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
