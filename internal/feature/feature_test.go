package feature

import (
	"testing"

	"matchcatcher/internal/config"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
)

func extractor(t *testing.T) *Extractor {
	t.Helper()
	attrs := []string{"name", "city"}
	a := table.MustNew("A", attrs)
	a.MustAppend([]string{"dave smith", "atlanta"})
	a.MustAppend([]string{"joe wilson", ""})
	b := table.MustNew("B", attrs)
	b.MustAppend([]string{"david smith", "atlanta"})
	b.MustAppend([]string{"ann brown", "chicago"})
	res, err := config.Generate(a, b, config.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewExtractor(ssjoin.NewCorpus(a, b, res))
}

func TestVectorShape(t *testing.T) {
	e := extractor(t)
	v := e.Vector(0, 0)
	if len(v) != e.Dim() || len(v) != len(e.Names()) {
		t.Fatalf("dim mismatch: %d vs %d vs %d", len(v), e.Dim(), len(e.Names()))
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Errorf("feature %s = %g out of [0,1]", e.Names()[i], x)
		}
	}
}

func TestVectorDiscriminates(t *testing.T) {
	e := extractor(t)
	match := e.Vector(0, 0)    // dave smith/atlanta vs david smith/atlanta
	nonmatch := e.Vector(0, 1) // dave smith/atlanta vs ann brown/chicago
	// The full-config jaccard feature (index 2n) must be higher for the
	// match.
	n := 2
	if match[2*n] <= nonmatch[2*n] {
		t.Errorf("all_jac: match %g <= nonmatch %g", match[2*n], nonmatch[2*n])
	}
}

func TestPresenceFlagsMissing(t *testing.T) {
	e := extractor(t)
	v := e.Vector(1, 0) // A row 1 has missing city
	names := e.Names()
	for i, name := range names {
		if name == "city_present" && v[i] != 0 {
			t.Errorf("city_present = %g for missing city", v[i])
		}
		if name == "name_present" && v[i] != 1 {
			t.Errorf("name_present = %g", v[i])
		}
	}
}
