// Package feature builds the pair feature vectors the Match Verifier's
// random forest learns on: per-attribute word-level Jaccard similarities,
// presence flags, a length-difference ratio, and the full-config score.
package feature

import (
	"matchcatcher/internal/config"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/ssjoin"
)

// Extractor computes feature vectors for tuple pairs over a corpus.
type Extractor struct {
	cor   *ssjoin.Corpus
	full  config.Mask
	names []string
}

// NewExtractor builds an extractor over the corpus's promising attributes.
func NewExtractor(cor *ssjoin.Corpus) *Extractor {
	n := len(cor.Res.Promising)
	e := &Extractor{
		cor:  cor,
		full: config.Mask(1)<<uint(n) - 1,
	}
	for _, attr := range cor.Res.Promising {
		e.names = append(e.names, attr+"_jac")
	}
	for _, attr := range cor.Res.Promising {
		e.names = append(e.names, attr+"_present")
	}
	e.names = append(e.names, "all_jac", "len_ratio")
	return e
}

// Names returns the feature names, aligned with Vector's output.
func (e *Extractor) Names() []string { return e.names }

// Dim returns the vector dimensionality.
func (e *Extractor) Dim() int { return len(e.names) }

// Vector computes the feature vector for the pair (A-row a, B-row b).
func (e *Extractor) Vector(a, b int32) []float64 {
	n := len(e.cor.Res.Promising)
	out := make([]float64, 0, 2*n+2)
	for i := 0; i < n; i++ {
		m := config.Mask(1) << uint(i)
		out = append(out, e.cor.Sim(a, b, m, simfunc.Jaccard))
	}
	for i := 0; i < n; i++ {
		m := config.Mask(1) << uint(i)
		if e.cor.LenUnder(0, a, m) > 0 && e.cor.LenUnder(1, b, m) > 0 {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	out = append(out, e.cor.Sim(a, b, e.full, simfunc.Jaccard))
	la := e.cor.LenUnder(0, a, e.full)
	lb := e.cor.LenUnder(1, b, e.full)
	if la == 0 || lb == 0 {
		out = append(out, 0)
	} else {
		out = append(out, float64(min(la, lb))/float64(max(la, lb)))
	}
	return out
}
