package core

import (
	"fmt"
	"sort"
	"strings"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/floats"
	"matchcatcher/internal/simfunc"
	"matchcatcher/internal/tokenize"
)

// Problem classifies why an attribute pair disagrees — the vocabulary of
// the paper's Table 4 "blocker problems" column. The paper's conclusion
// lists automatic explanation and summarization as future work; this
// implements that extension.
type Problem int

// The problem kinds.
const (
	ProblemNone         Problem = iota // values agree (not a problem)
	ProblemMissing                     // value missing on one or both sides
	ProblemMisspelling                 // tiny edit distance between values
	ProblemAbbreviation                // one value abbreviates the other
	ProblemWordSubset                  // one value's words contained in the other's (dropped/extra words)
	ProblemPartial                     // some words shared, some not
	ProblemDisjoint                    // values share nothing
)

// String names the problem as a report label.
func (p Problem) String() string {
	switch p {
	case ProblemNone:
		return "agrees"
	case ProblemMissing:
		return "missing value"
	case ProblemMisspelling:
		return "misspelling"
	case ProblemAbbreviation:
		return "abbreviation"
	case ProblemWordSubset:
		return "dropped/extra words"
	case ProblemPartial:
		return "partial word overlap"
	case ProblemDisjoint:
		return "disjoint values"
	}
	return "unknown"
}

// AttrDiag is the per-attribute diagnosis of one killed-off match.
type AttrDiag struct {
	Attr     string
	ValueA   string
	ValueB   string
	Jaccard  float64
	Problem  Problem
	Severity float64 // 0 (agrees) .. 1 (disjoint), for ranking problems
}

// Explanation describes why a match plausibly failed blocking: the
// per-attribute diagnoses sorted most-severe first, plus rendered notes.
type Explanation struct {
	Pair  blocker.Pair
	Diags []AttrDiag
	Notes []string
}

// Explain diagnoses one pair (typically a confirmed killed-off match)
// attribute by attribute.
func (d *Debugger) Explain(p blocker.Pair) Explanation {
	ex := Explanation{Pair: p}
	for _, attr := range d.res.Promising {
		va, _ := d.a.ValueByName(p.A, attr)
		vb, _ := d.b.ValueByName(p.B, attr)
		diag := diagnose(attr, va, vb)
		ex.Diags = append(ex.Diags, diag)
	}
	sort.SliceStable(ex.Diags, func(i, j int) bool { return ex.Diags[i].Severity > ex.Diags[j].Severity })
	for _, diag := range ex.Diags {
		if diag.Problem == ProblemNone {
			continue
		}
		ex.Notes = append(ex.Notes, fmt.Sprintf("%s: %s (%q vs %q)", diag.Attr, diag.Problem, diag.ValueA, diag.ValueB))
	}
	return ex
}

func diagnose(attr, va, vb string) AttrDiag {
	diag := AttrDiag{Attr: attr, ValueA: va, ValueB: vb}
	na, nb := tokenize.Normalize(va), tokenize.Normalize(vb)
	ta, tb := tokenize.WordSet(va), tokenize.WordSet(vb)
	diag.Jaccard = simfunc.Jaccard.Score(ta, tb)
	switch {
	case na == "" || nb == "":
		diag.Problem = ProblemMissing
		diag.Severity = 0.9
	case na == nb:
		diag.Problem = ProblemNone
	case isMisspelling(na, nb):
		diag.Problem = ProblemMisspelling
		diag.Severity = 0.6
	case isAbbreviation(ta, tb) || isAbbreviation(tb, ta):
		diag.Problem = ProblemAbbreviation
		diag.Severity = 0.6
	case simfunc.OverlapCount(ta, tb) == min(len(ta), len(tb)):
		diag.Problem = ProblemWordSubset
		diag.Severity = 0.4
	case diag.Jaccard > 0:
		diag.Problem = ProblemPartial
		diag.Severity = 0.7 * (1 - diag.Jaccard)
	default:
		diag.Problem = ProblemDisjoint
		diag.Severity = 1
	}
	return diag
}

// isMisspelling: small edit distance relative to length.
func isMisspelling(na, nb string) bool {
	d := simfunc.Levenshtein(na, nb)
	m := max(len([]rune(na)), len([]rune(nb)))
	return d > 0 && d <= 2 && m >= 4
}

// isAbbreviation reports whether some short word of ta abbreviates tb:
// a prefix of one of tb's words ("chas" for "charles"), a first+last
// letter contraction ("nk" for "newyork"), or an acronym of consecutive
// words ("ny" for "new york").
func isAbbreviation(ta, tb []string) bool {
	var initials strings.Builder
	for _, wb := range tb {
		initials.WriteByte(wb[0])
	}
	acro := initials.String()
	for _, wa := range ta {
		if len(wa) > 4 {
			continue
		}
		w := strings.TrimSuffix(wa, ".")
		if w == "" {
			continue
		}
		if len(w) >= 2 && strings.Contains(acro, w) {
			return true
		}
		for _, wb := range tb {
			if len(wb) <= len(w) {
				continue
			}
			if strings.HasPrefix(wb, w) {
				return true
			}
			if len(w) == 2 && w[0] == wb[0] && w[1] == wb[len(wb)-1] {
				return true
			}
		}
	}
	return false
}

// ProblemCount aggregates problems across a set of confirmed matches —
// the "summarize explanations, fix the most pervasive problems first"
// extension sketched in the paper's conclusion. Keys are "attr: problem".
func (d *Debugger) ProblemCount(matches []blocker.Pair) map[string]int {
	out := map[string]int{}
	for _, p := range matches {
		for _, diag := range d.Explain(p).Diags {
			if diag.Problem == ProblemNone {
				continue
			}
			out[diag.Attr+": "+diag.Problem.String()]++
		}
	}
	return out
}

// TopProblems renders the n most frequent problems, most pervasive first.
func (d *Debugger) TopProblems(matches []blocker.Pair, n int) []string {
	counts := d.ProblemCount(matches)
	type kv struct {
		k string
		v int
	}
	var kvs []kv
	for k, v := range counts {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	var out []string
	for i := 0; i < len(kvs) && i < n; i++ {
		out = append(out, fmt.Sprintf("%s (%d)", kvs[i].k, kvs[i].v))
	}
	return out
}

// SimilarCandidates returns up to n candidate pairs from E whose
// per-attribute similarity profile is closest (Euclidean distance over the
// verifier's feature vectors) to the given pair. This implements the
// paper's future-work query: given a killed-off match, how pervasive is
// its problem — which other killed-off pairs look the same from a blocking
// point of view?
func (d *Debugger) SimilarCandidates(p blocker.Pair, n int) []blocker.Pair {
	ref := d.ext.Vector(int32(p.A), int32(p.B))
	type scored struct {
		pair blocker.Pair
		dist float64
	}
	var all []scored
	seen := map[blocker.Pair]bool{p: true}
	for _, l := range d.join.Lists {
		for _, sp := range l.Pairs {
			q := blocker.Pair{A: int(sp.A), B: int(sp.B)}
			if seen[q] {
				continue
			}
			seen[q] = true
			v := d.ext.Vector(sp.A, sp.B)
			dist := 0.0
			for i := range ref {
				diff := ref[i] - v[i]
				dist += diff * diff
			}
			all = append(all, scored{pair: q, dist: dist})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !floats.Equal(all[i].dist, all[j].dist) {
			return all[i].dist < all[j].dist
		}
		if all[i].pair.A != all[j].pair.A {
			return all[i].pair.A < all[j].pair.A
		}
		return all[i].pair.B < all[j].pair.B
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]blocker.Pair, len(all))
	for i, s := range all {
		out[i] = s.pair
	}
	return out
}
