package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"matchcatcher/internal/blocker"
)

// The explain report renders, for every watched pair, the full decision
// lineage the provenance layer recorded across the pipeline — which
// blocker rule kept or dropped the pair, whether the joins suppressed it
// as a member of C, its exact score and rank under each config, its
// position in the verifier's candidate pool, and when the user saw and
// labeled it — followed by the attribute-level diagnosis from Explain.
// It answers the debugging question the paper's interactive loop serves
// ("why did my blocker kill this match?") for specific pairs named up
// front, instead of waiting for the pair to surface in a top-k list.

// WriteExplainReport renders the lineage of every watched pair. It
// returns an error only on write failure; a session with no watched
// pairs renders a one-line notice.
func (d *Debugger) WriteExplainReport(w io.Writer) error {
	if !d.prov.Active() {
		_, err := fmt.Fprintln(w, "explain: no watched pairs (use -explain a_row,b_row)")
		return err
	}
	traces := d.prov.Traces()
	if _, err := fmt.Fprintf(w, "explain report: %d watched pair(s)\n", len(traces)); err != nil {
		return err
	}
	for _, t := range traces {
		if err := d.writePairLineage(w, t.A, t.B); err != nil {
			return err
		}
	}
	return nil
}

// WriteExplainPair renders one pair's lineage and diagnosis — the unit
// WriteExplainReport loops over — so a session host can serve a single
// pair's provenance on demand without rendering the whole watch-list.
func (d *Debugger) WriteExplainPair(w io.Writer, a, b int) error {
	return d.writePairLineage(w, a, b)
}

func (d *Debugger) writePairLineage(w io.Writer, a, b int) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\npair (%d, %d)\n", a, b)
	inRange := a >= 0 && a < d.a.NumRows() && b >= 0 && b < d.b.NumRows()
	if inRange {
		fmt.Fprintf(&sb, "  A: %s\n", strings.Join(d.RowA(a), ", "))
		fmt.Fprintf(&sb, "  B: %s\n", strings.Join(d.RowB(b), ", "))
	} else {
		sb.WriteString("  (row ids out of range for the loaded tables)\n")
	}
	t := d.prov.Trace(a, b)
	sb.WriteString("  lineage:\n")
	if t == nil || len(t.Events) == 0 {
		sb.WriteString("    (no events recorded: the pair never crossed an instrumented decision point)\n")
	}
	if t != nil {
		for _, ev := range t.Events {
			fmt.Fprintf(&sb, "    [%s] %s%s\n", ev.Stage, ev.Event, renderAttrs(ev.Attrs))
		}
		if t.Truncated > 0 {
			fmt.Fprintf(&sb, "    ... %d earlier event(s) truncated\n", t.Truncated)
		}
	}
	if inRange {
		ex := d.Explain(blocker.Pair{A: a, B: b})
		sb.WriteString("  diagnosis:\n")
		if len(ex.Notes) == 0 {
			sb.WriteString("    all promising attributes agree\n")
		}
		for _, n := range ex.Notes {
			fmt.Fprintf(&sb, "    %s\n", n)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// renderAttrs renders an event's attributes sorted by key, so reruns of
// the same session produce byte-identical reports.
func renderAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%s", k, attrs[k])
	}
	return sb.String()
}
