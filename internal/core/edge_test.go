package core

import (
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/table"
)

// TestBlockerKeepsEverything: when C = A×B, D is empty and the debugger
// must come back empty-handed immediately.
func TestBlockerKeepsEverything(t *testing.T) {
	a, b, _, _ := figure1(t)
	c := blocker.NewPairSet()
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < b.NumRows(); j++ {
			c.Add(i, j)
		}
	}
	d, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.CandidateCount() != 0 {
		t.Errorf("|E| = %d for a perfect blocker", d.CandidateCount())
	}
	if !d.Done() {
		t.Error("debugger should be done immediately")
	}
	if got := d.Next(); got != nil {
		t.Errorf("Next = %v", got)
	}
}

// TestBlockerKeepsNothing: C empty means every pair is killed; the
// debugger must still run and find the matches.
func TestBlockerKeepsNothing(t *testing.T) {
	a, b, _, gold := figure1(t)
	d, err := New(a, b, blocker.NewPairSet(), Options{Verifier: ranker.Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for !d.Done() {
		pairs := d.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		for i, p := range pairs {
			labels[i] = gold.Contains(p.A, p.B)
			if labels[i] {
				found++
			}
		}
		if err := d.Feedback(labels); err != nil {
			t.Fatal(err)
		}
	}
	if found < 3 {
		t.Errorf("found only %d of 4 matches with an empty C", found)
	}
}

// TestNilCandidateSet: a nil C behaves like an empty one.
func TestNilCandidateSet(t *testing.T) {
	a, b, _, _ := figure1(t)
	d, err := New(a, b, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.CandidateCount() == 0 {
		t.Error("nil C should behave like empty C (everything killed)")
	}
}

// TestMostlyMissingColumn: an attribute that is missing nearly everywhere
// must not break config generation or joining.
func TestMostlyMissingColumn(t *testing.T) {
	a := table.MustNew("A", []string{"name", "ghost"})
	b := table.MustNew("B", []string{"name", "ghost"})
	for i := 0; i < 6; i++ {
		a.MustAppend([]string{"alpha beta " + string(rune('a'+i)), ""})
		b.MustAppend([]string{"alpha beta " + string(rune('a'+i)), ""})
	}
	a.MustAppend([]string{"gamma delta", "x"})
	b.MustAppend([]string{"gamma delta", "x"})
	d, err := New(a, b, blocker.NewPairSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.CandidateCount() == 0 {
		t.Error("no candidates despite identical tuples")
	}
}

// TestUnicodeValues: multi-byte values flow through tokenization, joins,
// and explanations without corruption.
func TestUnicodeValues(t *testing.T) {
	a := table.MustNew("A", []string{"name", "city"})
	a.MustAppend([]string{"日本語 タイトル", "東京"})
	a.MustAppend([]string{"garçon déjà vu", "münchen"})
	b := table.MustNew("B", []string{"name", "city"})
	b.MustAppend([]string{"日本語 タイトル", "東京"})
	b.MustAppend([]string{"garçon déjà", "münchen"})
	d, err := New(a, b, blocker.NewPairSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lists := d.Lists()
	if len(lists) == 0 {
		t.Fatal("no lists")
	}
	top := lists[0].Pairs
	if len(top) == 0 || top[0].Score < 0.99 {
		t.Errorf("identical unicode tuples should top the list: %+v", top)
	}
	ex := d.Explain(blocker.Pair{A: 1, B: 1})
	if len(ex.Diags) == 0 {
		t.Error("no diagnosis for unicode pair")
	}
}

// TestSingleRowTables: the minimum possible input.
func TestSingleRowTables(t *testing.T) {
	a := table.MustNew("A", []string{"name"})
	a.MustAppend([]string{"only row"})
	b := table.MustNew("B", []string{"name"})
	b.MustAppend([]string{"only row"})
	d, err := New(a, b, blocker.NewPairSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.CandidateCount() != 1 {
		t.Errorf("|E| = %d, want 1", d.CandidateCount())
	}
}

// TestFeedbackAfterDone: calling the iteration API past the stopping
// condition is harmless.
func TestFeedbackAfterDone(t *testing.T) {
	a, b, c, _ := figure1(t)
	d, err := New(a, b, c, Options{Verifier: ranker.Options{MaxIterations: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pairs := d.Next()
	if err := d.Feedback(make([]bool, len(pairs))); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("should be done after MaxIterations")
	}
	if got := d.Next(); got != nil {
		t.Errorf("Next after done = %v", got)
	}
	if err := d.Feedback(nil); err != nil {
		t.Errorf("empty feedback after done should be a no-op, got %v", err)
	}
}
