package core

import (
	"encoding/json"
	"io"

	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/telemetry"
)

// MatchReport is one confirmed killed-off match with its rendered values
// and explanation.
type MatchReport struct {
	ARow    int      `json:"a_row"`
	BRow    int      `json:"b_row"`
	ValuesA []string `json:"values_a"`
	ValuesB []string `json:"values_b"`
	Notes   []string `json:"notes"`
}

// Report is a JSON-encodable summary of a debugging session, for piping
// the debugger's findings into downstream tooling.
type Report struct {
	TableA      string        `json:"table_a"`
	TableB      string        `json:"table_b"`
	RowsA       int           `json:"rows_a"`
	RowsB       int           `json:"rows_b"`
	BlockerOut  int           `json:"candidate_set_size"`
	Promising   []string      `json:"promising_attrs"`
	Configs     int           `json:"configs"`
	Candidates  int           `json:"e_size"`
	Iterations  int           `json:"iterations"`
	Matches     []MatchReport `json:"matches"`
	TopProblems []string      `json:"top_problems"`
	JoinStats   ssjoin.Stats  `json:"join_stats"`
	// Telemetry is the session registry's snapshot at report time: every
	// mc_* series (counters, gauges, stage/iteration histograms), so a
	// report is self-describing about prune rates, reuse hit rates, and
	// per-stage latency without scraping /metrics.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Provenance is the per-pair decision lineage for every watched pair
	// (mcdebug -explain): blocker keep/drop, join suppression / score /
	// rank, verifier pool position, shown/labeled events. Present only
	// when the session watched pairs.
	Provenance []*telemetry.PairTrace `json:"provenance,omitempty"`
}

// Report summarizes the session so far (typically called once Done).
func (d *Debugger) Report() Report {
	r := Report{
		TableA:      d.a.Name(),
		TableB:      d.b.Name(),
		RowsA:       d.a.NumRows(),
		RowsB:       d.b.NumRows(),
		BlockerOut:  d.c.Len(),
		Promising:   d.res.Promising,
		Configs:     len(d.join.Lists),
		Candidates:  d.CandidateCount(),
		Iterations:  d.Iterations(),
		TopProblems: d.TopProblems(d.Matches(), 5),
		JoinStats:   d.join.Stats,
		Telemetry:   d.reg.Snapshot(),
	}
	if d.prov.Active() {
		r.Provenance = d.prov.Traces()
	}
	for _, m := range d.Matches() {
		r.Matches = append(r.Matches, MatchReport{
			ARow:    m.A,
			BRow:    m.B,
			ValuesA: d.RowA(m.A),
			ValuesB: d.RowB(m.B),
			Notes:   d.Explain(m).Notes,
		})
	}
	return r
}

// WriteReport writes the session report as indented JSON.
func (d *Debugger) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Report())
}
