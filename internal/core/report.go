package core

import (
	"encoding/json"
	"io"

	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/telemetry"
)

// MatchReport is one confirmed killed-off match with its rendered values
// and explanation.
type MatchReport struct {
	ARow    int      `json:"a_row"`
	BRow    int      `json:"b_row"`
	ValuesA []string `json:"values_a"`
	ValuesB []string `json:"values_b"`
	Notes   []string `json:"notes"`
}

// Report is a JSON-encodable summary of a debugging session, for piping
// the debugger's findings into downstream tooling.
type Report struct {
	TableA      string        `json:"table_a"`
	TableB      string        `json:"table_b"`
	RowsA       int           `json:"rows_a"`
	RowsB       int           `json:"rows_b"`
	BlockerOut  int           `json:"candidate_set_size"`
	Promising   []string      `json:"promising_attrs"`
	Configs     int           `json:"configs"`
	Candidates  int           `json:"e_size"`
	Iterations  int           `json:"iterations"`
	Matches     []MatchReport `json:"matches"`
	TopProblems []string      `json:"top_problems"`
	JoinStats   ssjoin.Stats  `json:"join_stats"`
	// Telemetry is the session registry's snapshot at report time: every
	// mc_* series (counters, gauges, stage/iteration histograms), so a
	// report is self-describing about prune rates, reuse hit rates, and
	// per-stage latency without scraping /metrics.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Provenance is the per-pair decision lineage for every watched pair
	// (mcdebug -explain): blocker keep/drop, join suppression / score /
	// rank, verifier pool position, shown/labeled events. Present only
	// when the session watched pairs.
	Provenance []*telemetry.PairTrace `json:"provenance,omitempty"`
}

// Report summarizes the session so far (typically called once Done).
// The whole summary is assembled under the session lock, so a report
// taken while another goroutine drives the session is a consistent cut,
// never half an iteration.
func (d *Debugger) Report() Report {
	return d.report(true)
}

// CanonicalReport is Report without the telemetry snapshot. Everything
// left — the ranked matches, provenance lineage, join statistics — is a
// pure function of (tables, blocker output, seed, join options), so two
// same-seed sessions produce byte-identical canonical reports no matter
// which transport drove them (CLI loop or HTTP session) and no matter
// how fast the machine ran. The full Report adds wall-clock histograms
// and is correspondingly non-reproducible byte-for-byte.
func (d *Debugger) CanonicalReport() Report {
	return d.report(false)
}

func (d *Debugger) report(telemetrySnapshot bool) Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	matches := d.verif.Matches()
	r := Report{
		TableA:      d.a.Name(),
		TableB:      d.b.Name(),
		RowsA:       d.a.NumRows(),
		RowsB:       d.b.NumRows(),
		BlockerOut:  d.c.Len(),
		Promising:   d.res.Promising,
		Configs:     len(d.join.Lists),
		Candidates:  d.verif.NumCandidates(),
		Iterations:  d.verif.Iterations(),
		TopProblems: d.TopProblems(matches, 5),
		JoinStats:   d.join.Stats,
	}
	if telemetrySnapshot {
		r.Telemetry = d.reg.Snapshot()
	}
	if d.prov.Active() {
		r.Provenance = d.prov.Traces()
	}
	for _, m := range matches {
		r.Matches = append(r.Matches, MatchReport{
			ARow:    m.A,
			BRow:    m.B,
			ValuesA: d.RowA(m.A),
			ValuesB: d.RowB(m.B),
			Notes:   d.Explain(m).Notes,
		})
	}
	return r
}

// WriteReport writes the session report as indented JSON.
func (d *Debugger) WriteReport(w io.Writer) error {
	return writeReportJSON(w, d.Report())
}

// WriteCanonicalReport writes the telemetry-free canonical report as
// indented JSON — the byte-stable artifact the serve/CLI determinism
// tests diff.
func (d *Debugger) WriteCanonicalReport(w io.Writer) error {
	return writeReportJSON(w, d.CanonicalReport())
}

func writeReportJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
