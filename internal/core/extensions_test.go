package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
)

func TestSimilarCandidates(t *testing.T) {
	a, b, c, _ := figure1(t)
	d, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (a1,b1) is a killed-off match with a near-identical name and a
	// misspelt city; its most similar candidates should not include
	// itself and should be valid E pairs.
	ref := blocker.Pair{A: 0, B: 0}
	sim := d.SimilarCandidates(ref, 3)
	if len(sim) == 0 {
		t.Fatal("no similar candidates")
	}
	e := d.Candidates()
	for _, p := range sim {
		if p == ref {
			t.Error("reference pair returned as its own neighbour")
		}
		if !e.Contains(p.A, p.B) {
			t.Errorf("similar candidate %v is not in E", p)
		}
	}
	// Asking for more neighbours than exist returns all of E minus ref.
	all := d.SimilarCandidates(ref, 10_000)
	if len(all) != d.CandidateCount()-1 {
		t.Errorf("all neighbours = %d, want %d", len(all), d.CandidateCount()-1)
	}
}

func TestCuratedAttrs(t *testing.T) {
	a, b, c, _ := figure1(t)
	d, err := New(a, b, c, Options{Config: config.Options{CuratedAttrs: []string{"Name"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Configs().Promising; len(got) != 1 || got[0] != "Name" {
		t.Fatalf("promising = %v", got)
	}
	if got := len(d.Lists()); got != 1 {
		t.Errorf("lists = %d, want 1", got)
	}
	// Curation can even force attributes the classifier would drop
	// (numeric Age).
	d2, err := New(a, b, c, Options{Config: config.Options{CuratedAttrs: []string{"Name", "Age"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d2.Configs().Promising); got != 2 {
		t.Errorf("curated promising = %v", d2.Configs().Promising)
	}
	// Unknown attributes are rejected.
	if _, err := New(a, b, c, Options{Config: config.Options{CuratedAttrs: []string{"Nope"}}}); err == nil {
		t.Error("want error for unknown curated attribute")
	}
}

func TestReport(t *testing.T) {
	a, b, c, gold := figure1(t)
	d, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := func(x, y int) bool { return gold.Contains(x, y) }
	d.Run(u)
	rep := d.Report()
	if rep.RowsA != 5 || rep.RowsB != 4 || rep.BlockerOut != 3 {
		t.Errorf("report shape = %+v", rep)
	}
	if len(rep.Matches) != 2 {
		t.Fatalf("matches = %d", len(rep.Matches))
	}
	if len(rep.Matches[0].Notes) == 0 || len(rep.Matches[0].ValuesA) == 0 {
		t.Error("match report missing details")
	}
	var buf bytes.Buffer
	if err := d.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded["e_size"] == nil || decoded["matches"] == nil {
		t.Errorf("JSON keys missing: %v", decoded)
	}
}
