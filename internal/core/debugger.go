// Package core assembles MatchCatcher's pipeline (Figure 2 of the paper):
// the Config Generator examines tables A and B; the joint top-k SSJ module
// finds, per config, the k killed-off pairs most similar under that
// config; and the Match Verifier engages the user over E (the union of the
// top-k lists) with rank aggregation and active/online learning until the
// stopping condition.
//
// The debugger is blocker independent: it takes only A, B, and the
// blocker's output C, never the blocker itself.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/feature"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// Options configures the three pipeline stages.
type Options struct {
	Config   config.Options
	Join     ssjoin.Options
	Verifier ranker.Options
	// Ctx cancels pipeline construction: New threads it into the joint
	// executor (ssjoin.Options.Ctx), so a request timeout or a client
	// disconnect aborts the joins at their next cancellation check and
	// New returns the context's error instead of a half-built session.
	// Nil means no cancellation (context.Background()).
	Ctx context.Context
	// Metrics receives pipeline telemetry (stage latencies, per-iteration
	// wall time, size gauges) and is propagated to the join and verifier
	// stages unless they carry their own registry. Nil selects
	// telemetry.Default(); telemetry.Disabled() switches it off.
	Metrics *telemetry.Registry
	// Trace collects the session's hierarchical span tree. Nil builds a
	// private tracer bridged to the registry, so Trace() always returns a
	// tree (export it with WriteChromeTrace / WriteTree). Spans ending on
	// the tracer still observe mc_stage_seconds, so the flat stage
	// histograms from the registry era keep working.
	Trace *telemetry.Tracer
	// Logger receives structured progress records (stage completions,
	// iteration outcomes) correlated with the session's trace id. Nil
	// discards them.
	Logger *slog.Logger
	// Provenance, when non-nil and watching pairs, records every pipeline
	// decision that touches a watched pair: blocker keep/drop is recorded
	// by the blocker package (see blocker.SetProvenance); the join stage
	// records suppression by C, per-config score, and top-k rank; the
	// verifier records pool membership, aggregate rank, when the pair was
	// shown, and its label. Render the lineage with WriteExplainReport.
	Provenance *telemetry.Provenance
}

// Debugger is one debugging session for a blocker's output.
//
// A Debugger is safe to drive from multiple goroutines: all mutable
// session state (the verifier's pool, the iteration spans, the finish
// flag) lives under one mutex — one lock domain per session, the unit
// of isolation a session-hosting server needs. The immutable pipeline
// products built by New (tables, corpus, config tree, join lists) are
// read without the lock. Methods still form one logical conversation
// (Next then Feedback), so concurrent *drivers* of the same session
// interleave safely but see each other's iterations.
type Debugger struct {
	a, b *table.Table
	c    *blocker.PairSet

	res   *config.Result
	cor   *ssjoin.Corpus
	join  *ssjoin.JoinResult
	ext   *feature.Extractor
	verif *ranker.Verifier

	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	log    *slog.Logger
	prov   *telemetry.Provenance

	mu        sync.Mutex           //mc:lockrank 3 — the session's lock domain
	session   *telemetry.TraceSpan // root span of the whole session
	iterSpan  *telemetry.TraceSpan // current debug.iteration span
	iterStart time.Time            // set by Next, consumed by Feedback
	finished  bool                 // Finish called (idempotent)
}

// New builds a debugging session: it generates configs, runs the joint
// top-k SSJs against the candidate set c, and prepares the verifier.
// Every stage is traced into the registry's mc_stage_seconds histogram.
func New(a, b *table.Table, c *blocker.PairSet, opt Options) (*Debugger, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: both tables are required")
	}
	reg := telemetry.Or(opt.Metrics)
	if opt.Join.Metrics == nil {
		opt.Join.Metrics = reg
	}
	if opt.Verifier.Metrics == nil {
		opt.Verifier.Metrics = reg
	}
	tracer := opt.Trace
	if tracer == nil {
		tracer = telemetry.NewTracer(reg)
	}
	logg := telemetry.LoggerOr(opt.Logger)
	prov := opt.Provenance
	base := opt.Ctx
	if base == nil {
		base = context.Background()
	}
	if opt.Join.Ctx == nil {
		opt.Join.Ctx = base
	}

	session := tracer.Start("debug.session",
		telemetry.L("table_a", a.Name()),
		telemetry.L("table_b", b.Name()))
	ctx := telemetry.ContextWithSpan(base, session)

	csp := session.Child("config.generate")
	res, err := config.Generate(a, b, opt.Config)
	if err != nil {
		csp.End()
		session.End()
		return nil, fmt.Errorf("core: config generation: %w", err)
	}
	csp.SetAttrInt("promising_attrs", int64(len(res.Promising)))
	csp.End()
	logg.InfoContext(ctx, "configs generated", "promising_attrs", len(res.Promising))

	sp := session.Child("ssjoin.corpus")
	cor := ssjoin.NewCorpus(a, b, res)
	sp.End()

	jsp := session.Child("ssjoin.joinall")
	if opt.Join.Trace == nil {
		opt.Join.Trace = jsp
	}
	if opt.Join.Provenance == nil {
		opt.Join.Provenance = prov
	}
	join := ssjoin.JoinAll(cor, c, opt.Join)
	jsp.SetAttrInt("configs", int64(len(join.Lists)))
	jsp.End()
	if err := base.Err(); err != nil {
		// The joins aborted mid-flight; their lists are partial garbage.
		session.End()
		return nil, fmt.Errorf("core: join cancelled: %w", err)
	}
	//lint:allow atomicmix JoinAll's worker pool is joined before it returns; the counters are quiescent here
	scratch, reused := join.Stats.ScratchScores, join.Stats.ReusedScores
	logg.InfoContext(ctx, "joins complete",
		"configs", len(join.Lists),
		"scratch_scores", scratch,
		"reused_scores", reused)

	vsp := session.Child("verifier.prepare")
	ext := feature.NewExtractor(cor)
	if opt.Verifier.Trace == nil {
		opt.Verifier.Trace = vsp
	}
	if opt.Verifier.Provenance == nil {
		opt.Verifier.Provenance = prov
	}
	verif := ranker.NewVerifier(join.Lists, ext.Vector, opt.Verifier)
	vsp.SetAttrInt("e_size", int64(verif.NumCandidates()))
	vsp.End()
	logg.InfoContext(ctx, "verifier ready", "e_size", verif.NumCandidates())

	d := &Debugger{
		a: a, b: b, c: c, res: res, cor: cor, join: join, ext: ext, verif: verif,
		reg: reg, tracer: tracer, session: session, log: logg, prov: prov,
	}
	reg.Gauge("mc_core_rows_a").Set(float64(a.NumRows()))
	reg.Gauge("mc_core_rows_b").Set(float64(b.NumRows()))
	reg.Gauge("mc_core_c_size").Set(float64(c.Len()))
	reg.Gauge("mc_core_configs").Set(float64(len(join.Lists)))
	reg.Gauge("mc_core_e_size").Set(float64(d.CandidateCount()))
	return d, nil
}

// Configs returns the config generation result.
func (d *Debugger) Configs() *config.Result { return d.res }

// Lists returns the per-config top-k lists in breadth-first order.
func (d *Debugger) Lists() []ssjoin.TopKList { return d.join.Lists }

// JoinStats returns the joint executor's statistics.
func (d *Debugger) JoinStats() ssjoin.Stats { return d.join.Stats }

// CandidateCount returns |E|, the number of distinct pairs across lists.
func (d *Debugger) CandidateCount() int { return d.verif.NumCandidates() }

// Ranking returns the verifier's current ranked view of the unlabeled
// candidate pool — the aggregate bootstrap order before the learner has
// both classes, the model's confidence order after. It re-sorts after
// every Feedback, so it is the "updated ranking" a session host pages
// through between iterations. The slice is the caller's to keep.
func (d *Debugger) Ranking() []blocker.Pair {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.verif.Ranking()
}

// Candidates returns E as a pair set.
func (d *Debugger) Candidates() *blocker.PairSet {
	e := blocker.NewPairSet()
	for _, l := range d.join.Lists {
		for _, p := range l.Pairs {
			e.Add(int(p.A), int(p.B))
		}
	}
	return e
}

// Next returns the next batch of pairs for the user to inspect (at most
// Verifier.N), or nil when the session has reached its stopping condition.
// Each Next opens a debug.iteration trace span; the matching Feedback
// closes it, so every round is one subtree under debug.session.
func (d *Debugger) Next() []blocker.Pair {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finished {
		return nil
	}
	d.iterStart = time.Now()
	if d.iterSpan == nil && !d.verif.Done() {
		d.iterSpan = d.session.Child("debug.iteration")
		d.iterSpan.SetAttrInt("iteration", int64(d.verif.Iterations()+1))
		d.verif.SetTraceParent(d.iterSpan)
	}
	out := d.verif.Next()
	d.iterSpan.SetAttrInt("shown", int64(len(out)))
	return out
}

// Feedback records the user's labels for the pairs of the last Next call.
// One Next+Feedback round is one debugging iteration; its wall time rolls
// up into mc_core_iteration_seconds.
func (d *Debugger) Feedback(labels []bool) error {
	d.mu.Lock()
	if d.finished {
		d.mu.Unlock()
		return fmt.Errorf("core: Feedback after Finish")
	}
	before := len(d.verif.Matches())
	if err := d.verif.Feedback(labels); err != nil {
		d.mu.Unlock()
		return err
	}
	if !d.iterStart.IsZero() {
		d.reg.Histogram("mc_core_iteration_seconds").Observe(time.Since(d.iterStart).Seconds())
		d.iterStart = time.Time{}
	}
	iterations := d.verif.Iterations()
	total := len(d.verif.Matches())
	found := total - before
	d.reg.Gauge("mc_core_iterations").Set(float64(iterations))
	d.reg.Gauge("mc_core_matches_found").Set(float64(total))
	d.iterSpan.SetAttrInt("labels", int64(len(labels)))
	d.iterSpan.SetAttrInt("new_matches", int64(found))
	d.iterSpan.End()
	d.iterSpan = nil
	d.verif.SetTraceParent(d.session)
	session := d.session
	d.mu.Unlock()

	// Emit the log line after releasing d.mu: slog emission can block on
	// the sink, and nothing below reads guarded state (the session span
	// is immutable after New).
	ctx := telemetry.ContextWithSpan(context.Background(), session)
	d.log.InfoContext(ctx, "iteration complete",
		"iteration", iterations,
		"labels", len(labels),
		"new_matches", found,
		"total_matches", total)
	return nil
}

// Finish ends the session's root trace span. Call it when the
// interactive loop is over, before exporting the trace. Finish is
// idempotent: a second call (a server draining sessions it already
// closed, a CLI's deferred cleanup after an explicit Finish) is a
// no-op, and Next/Feedback after Finish are refused rather than
// re-opening spans under an ended session root.
func (d *Debugger) Finish() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.finishLocked()
}

func (d *Debugger) finishLocked() {
	if d.finished {
		return
	}
	d.finished = true
	// No nil guard: TraceSpan methods are nil-safe no-ops (mclint's
	// spanend analyzer flags redundant guards like the one this had).
	d.iterSpan.End()
	d.iterSpan = nil
	d.session.End()
}

// Finished reports whether Finish has been called.
func (d *Debugger) Finished() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.finished
}

// Trace returns the session's tracer (never nil): export its tree with
// WriteChromeTrace or WriteTree.
func (d *Debugger) Trace() *telemetry.Tracer { return d.tracer }

// Session returns the session's root trace span.
func (d *Debugger) Session() *telemetry.TraceSpan { return d.session }

// Provenance returns the session's provenance recorder (may be nil).
func (d *Debugger) Provenance() *telemetry.Provenance { return d.prov }

// Done reports whether the stopping condition has been reached.
func (d *Debugger) Done() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.verif.Done()
}

// Matches returns the killed-off true matches confirmed so far, as a
// copy the caller may keep across further iterations.
func (d *Debugger) Matches() []blocker.Pair {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]blocker.Pair(nil), d.verif.Matches()...)
}

// Iterations returns the number of completed feedback rounds.
func (d *Debugger) Iterations() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.verif.Iterations()
}

// Run drives the session to completion with a labeling function (e.g. the
// synthetic user oracle). It routes through the debugger's own Next and
// Feedback so every round carries iteration telemetry, and finishes the
// session's trace span when the stopping condition is reached.
func (d *Debugger) Run(label func(a, b int) bool) ranker.RunResult {
	res := ranker.Run(d, label)
	d.Finish()
	return res
}

// Pair value accessors for presentation layers.

// RowA returns tuple a of table A rendered as attr=value strings over the
// promising attributes.
func (d *Debugger) RowA(row int) []string { return d.renderRow(d.a, row) }

// RowB is RowA for table B.
func (d *Debugger) RowB(row int) []string { return d.renderRow(d.b, row) }

func (d *Debugger) renderRow(t *table.Table, row int) []string {
	out := make([]string, 0, len(d.res.Promising))
	for _, attr := range d.res.Promising {
		v, _ := t.ValueByName(row, attr)
		out = append(out, attr+"="+v)
	}
	return out
}
