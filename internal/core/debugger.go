// Package core assembles MatchCatcher's pipeline (Figure 2 of the paper):
// the Config Generator examines tables A and B; the joint top-k SSJ module
// finds, per config, the k killed-off pairs most similar under that
// config; and the Match Verifier engages the user over E (the union of the
// top-k lists) with rank aggregation and active/online learning until the
// stopping condition.
//
// The debugger is blocker independent: it takes only A, B, and the
// blocker's output C, never the blocker itself.
package core

import (
	"fmt"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/config"
	"matchcatcher/internal/feature"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// Options configures the three pipeline stages.
type Options struct {
	Config   config.Options
	Join     ssjoin.Options
	Verifier ranker.Options
	// Metrics receives pipeline telemetry (stage latencies, per-iteration
	// wall time, size gauges) and is propagated to the join and verifier
	// stages unless they carry their own registry. Nil selects
	// telemetry.Default(); telemetry.Disabled() switches it off.
	Metrics *telemetry.Registry
}

// Debugger is one debugging session for a blocker's output.
type Debugger struct {
	a, b *table.Table
	c    *blocker.PairSet

	res   *config.Result
	cor   *ssjoin.Corpus
	join  *ssjoin.JoinResult
	ext   *feature.Extractor
	verif *ranker.Verifier

	reg       *telemetry.Registry
	iterStart time.Time // set by Next, consumed by Feedback
}

// New builds a debugging session: it generates configs, runs the joint
// top-k SSJs against the candidate set c, and prepares the verifier.
// Every stage is traced into the registry's mc_stage_seconds histogram.
func New(a, b *table.Table, c *blocker.PairSet, opt Options) (*Debugger, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: both tables are required")
	}
	reg := telemetry.Or(opt.Metrics)
	if opt.Join.Metrics == nil {
		opt.Join.Metrics = reg
	}
	if opt.Verifier.Metrics == nil {
		opt.Verifier.Metrics = reg
	}

	sp := reg.Start("config.generate")
	res, err := config.Generate(a, b, opt.Config)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: config generation: %w", err)
	}
	sp = reg.Start("ssjoin.corpus")
	cor := ssjoin.NewCorpus(a, b, res)
	sp.End()
	sp = reg.Start("ssjoin.joinall")
	join := ssjoin.JoinAll(cor, c, opt.Join)
	sp.End()
	sp = reg.Start("verifier.prepare")
	ext := feature.NewExtractor(cor)
	verif := ranker.NewVerifier(join.Lists, ext.Vector, opt.Verifier)
	sp.End()

	d := &Debugger{a: a, b: b, c: c, res: res, cor: cor, join: join, ext: ext, verif: verif, reg: reg}
	reg.Gauge("mc_core_rows_a").Set(float64(a.NumRows()))
	reg.Gauge("mc_core_rows_b").Set(float64(b.NumRows()))
	reg.Gauge("mc_core_c_size").Set(float64(c.Len()))
	reg.Gauge("mc_core_configs").Set(float64(len(join.Lists)))
	reg.Gauge("mc_core_e_size").Set(float64(d.CandidateCount()))
	return d, nil
}

// Configs returns the config generation result.
func (d *Debugger) Configs() *config.Result { return d.res }

// Lists returns the per-config top-k lists in breadth-first order.
func (d *Debugger) Lists() []ssjoin.TopKList { return d.join.Lists }

// JoinStats returns the joint executor's statistics.
func (d *Debugger) JoinStats() ssjoin.Stats { return d.join.Stats }

// CandidateCount returns |E|, the number of distinct pairs across lists.
func (d *Debugger) CandidateCount() int { return d.verif.NumCandidates() }

// Candidates returns E as a pair set.
func (d *Debugger) Candidates() *blocker.PairSet {
	e := blocker.NewPairSet()
	for _, l := range d.join.Lists {
		for _, p := range l.Pairs {
			e.Add(int(p.A), int(p.B))
		}
	}
	return e
}

// Next returns the next batch of pairs for the user to inspect (at most
// Verifier.N), or nil when the session has reached its stopping condition.
func (d *Debugger) Next() []blocker.Pair {
	d.iterStart = time.Now()
	return d.verif.Next()
}

// Feedback records the user's labels for the pairs of the last Next call.
// One Next+Feedback round is one debugging iteration; its wall time rolls
// up into mc_core_iteration_seconds.
func (d *Debugger) Feedback(labels []bool) error {
	err := d.verif.Feedback(labels)
	if err == nil {
		if !d.iterStart.IsZero() {
			d.reg.Histogram("mc_core_iteration_seconds").Observe(time.Since(d.iterStart).Seconds())
			d.iterStart = time.Time{}
		}
		d.reg.Gauge("mc_core_iterations").Set(float64(d.verif.Iterations()))
		d.reg.Gauge("mc_core_matches_found").Set(float64(len(d.verif.Matches())))
	}
	return err
}

// Done reports whether the stopping condition has been reached.
func (d *Debugger) Done() bool { return d.verif.Done() }

// Matches returns the killed-off true matches confirmed so far.
func (d *Debugger) Matches() []blocker.Pair { return d.verif.Matches() }

// Iterations returns the number of completed feedback rounds.
func (d *Debugger) Iterations() int { return d.verif.Iterations() }

// Run drives the session to completion with a labeling function (e.g. the
// synthetic user oracle). It routes through the debugger's own Next and
// Feedback so every round carries iteration telemetry.
func (d *Debugger) Run(label func(a, b int) bool) ranker.RunResult {
	return ranker.Run(d, label)
}

// Pair value accessors for presentation layers.

// RowA returns tuple a of table A rendered as attr=value strings over the
// promising attributes.
func (d *Debugger) RowA(row int) []string { return d.renderRow(d.a, row) }

// RowB is RowA for table B.
func (d *Debugger) RowB(row int) []string { return d.renderRow(d.b, row) }

func (d *Debugger) renderRow(t *table.Table, row int) []string {
	out := make([]string, 0, len(d.res.Promising))
	for _, attr := range d.res.Promising {
		v, _ := t.ValueByName(row, attr)
		out = append(out, attr+"="+v)
	}
	return out
}
