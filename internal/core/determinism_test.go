package core

import (
	"reflect"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/telemetry"
)

// debugOnce runs one full debugging session on the F-Z profile with the
// given seed and returns everything observable about the run: the
// candidate pool, the per-iteration trace, and the final match list.
// Each run gets its own private telemetry registry so that global metric
// state can never leak between runs (or influence them).
func debugOnce(t *testing.T, seed int64) (pool []blocker.Pair, res ranker.RunResult) {
	t.Helper()
	d := datagen.MustGenerate(datagen.FodorsZagats())
	c, err := blocker.NewAttrEquivalence("city").Block(d.A, d.B)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Metrics: telemetry.New()}
	opt.Join.K = 200
	// Full parallelism on purpose: every single-config join is exact
	// under the total order (score desc, idA, idB), so neither the
	// cross-config worker pool nor the intra-join probe shards can move
	// a bit of output. Same-seed runs must be byte-identical at ANY
	// worker counts; see DESIGN.md "Intra-join parallelism & determinism".
	opt.Join.Workers = 4
	opt.Join.ProbeWorkers = 4
	opt.Verifier.N = 10
	opt.Verifier.Seed = seed
	dbg, err := New(d.A, d.B, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	u := oracle.New(d.Gold, 0, seed)
	res = dbg.Run(u.Label)
	pool = dbg.Candidates().SortedPairs()
	return pool, res
}

// TestRunDeterministic checks the end-to-end reproducibility contract:
// all randomness in the pipeline (verifier tie-breaking, active-learning
// sampling, the random forest's bootstrap and feature subsets, the
// synthetic user) is injected via seeds, so two sessions with the same
// seed must produce byte-identical iteration traces — same candidate
// pool, same matches in the same order, same per-iteration match counts.
func TestRunDeterministic(t *testing.T) {
	pool1, res1 := debugOnce(t, 42)
	pool2, res2 := debugOnce(t, 42)

	if !reflect.DeepEqual(pool1, pool2) {
		t.Errorf("candidate pools differ: %d vs %d pairs", len(pool1), len(pool2))
	}
	if !reflect.DeepEqual(res1.Matches, res2.Matches) {
		t.Errorf("matches differ:\n run1: %v\n run2: %v", res1.Matches, res2.Matches)
	}
	if res1.Iterations != res2.Iterations {
		t.Errorf("iterations differ: %d vs %d", res1.Iterations, res2.Iterations)
	}
	if res1.LabelsGiven != res2.LabelsGiven {
		t.Errorf("labels differ: %d vs %d", res1.LabelsGiven, res2.LabelsGiven)
	}
	if !reflect.DeepEqual(res1.MatchesByIteration, res2.MatchesByIteration) {
		t.Errorf("iteration traces differ:\n run1: %v\n run2: %v",
			res1.MatchesByIteration, res2.MatchesByIteration)
	}
	if res1.Iterations == 0 || len(res1.Matches) == 0 {
		t.Fatalf("degenerate run (iterations=%d matches=%d): determinism check is vacuous",
			res1.Iterations, len(res1.Matches))
	}
}

// TestRunSeedSensitivity is the complement: a different seed must be
// allowed to change the trace (it exercises different verifier orderings),
// while the *set* of true matches found stays correct. This guards
// against a hidden global seed that would make every run identical
// regardless of Options.Seed.
func TestRunSeedSensitivity(t *testing.T) {
	_, res1 := debugOnce(t, 1)
	_, res2 := debugOnce(t, 99)
	// Both runs report only true matches; order may differ.
	set1 := map[blocker.Pair]bool{}
	for _, p := range res1.Matches {
		set1[p] = true
	}
	for _, p := range res2.Matches {
		if !set1[p] {
			return // traces diverged, as expected with a different seed
		}
	}
	if len(res1.Matches) != len(res2.Matches) || res1.Iterations != res2.Iterations {
		return
	}
	// Identical outcomes across seeds are suspicious but not strictly
	// wrong (the F-Z pool is small); only log it so the audit trail shows
	// the seeds were exercised.
	t.Logf("seeds 1 and 99 produced identical summaries (matches=%d iterations=%d)",
		len(res1.Matches), res1.Iterations)
}
