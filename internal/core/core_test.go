package core

import (
	"strings"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/datagen"
	"matchcatcher/internal/oracle"
	"matchcatcher/internal/ranker"
	"matchcatcher/internal/table"
)

// figure1 builds the running example of the paper: tables A and B of
// Figure 1, blocker Q1 (attribute equivalence on City), and the gold
// matches (a1,b1), (a2,b3), (a3,b2), (a4,b4).
func figure1(t *testing.T) (*table.Table, *table.Table, *blocker.PairSet, *blocker.PairSet) {
	t.Helper()
	a := table.MustNew("A", []string{"Name", "City", "Age"})
	a.MustAppend([]string{"Dave Smith", "Altanta", "18"})
	a.MustAppend([]string{"Daniel Smith", "LA", "18"})
	a.MustAppend([]string{"Joe Welson", "New York", "25"})
	a.MustAppend([]string{"Charles Williams", "Chicago", "45"})
	a.MustAppend([]string{"Charlie William", "Atlanta", "28"})
	b := table.MustNew("B", []string{"Name", "City", "Age"})
	b.MustAppend([]string{"David Smith", "Atlanta", "18"})
	b.MustAppend([]string{"Joe Wilson", "NY", "25"})
	b.MustAppend([]string{"Daniel W. Smith", "LA", "30"})
	b.MustAppend([]string{"Charles Williams", "Chicago", "45"})
	c, err := blocker.NewAttrEquivalence("City").Block(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gold := blocker.NewPairSet()
	gold.Add(0, 0)
	gold.Add(1, 2)
	gold.Add(2, 1)
	gold.Add(3, 3)
	return a, b, c, gold
}

// TestFigure1Scenario reproduces Example 1.1: debugging Q1 must surface
// exactly the two killed-off matches (a1,b1) and (a3,b2).
func TestFigure1Scenario(t *testing.T) {
	a, b, c, gold := figure1(t)
	d, err := New(a, b, c, Options{Verifier: ranker.Options{N: 3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Age is numeric and must be dropped; Name and City survive.
	if got := d.Configs().Promising; len(got) != 2 {
		t.Fatalf("promising = %v", got)
	}
	if got := len(d.Lists()); got != 3 { // {Name,City}, {Name}, {City}
		t.Errorf("lists = %d, want 3", got)
	}
	u := oracle.New(gold, 0, 1)
	res := d.Run(u.Label)
	found := map[blocker.Pair]bool{}
	for _, p := range res.Matches {
		found[p] = true
	}
	if !found[(blocker.Pair{A: 0, B: 0})] {
		t.Error("missed killed-off match (a1,b1)")
	}
	if !found[(blocker.Pair{A: 2, B: 1})] {
		t.Error("missed killed-off match (a3,b2)")
	}
	if len(found) != 2 {
		t.Errorf("matches = %v, want exactly the two killed-off matches", res.Matches)
	}
	// Pairs surviving the blocker must never appear in E.
	e := d.Candidates()
	c.ForEach(func(x, y int) {
		if e.Contains(x, y) {
			t.Errorf("pair (%d,%d) from C leaked into E", x, y)
		}
	})
}

func TestExplainFigure1(t *testing.T) {
	a, b, c, _ := figure1(t)
	d, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (a1,b1): City misspelt "Altanta" vs "Atlanta", Name near-match.
	ex := d.Explain(blocker.Pair{A: 0, B: 0})
	joined := strings.Join(ex.Notes, "; ")
	if !strings.Contains(joined, "City: misspelling") {
		t.Errorf("explanation misses City misspelling: %v", ex.Notes)
	}
	// (a3,b2): City "New York" vs "NY" — abbreviation or disjoint-ish;
	// Name "Welson" vs "Wilson" misspelling.
	ex2 := d.Explain(blocker.Pair{A: 2, B: 1})
	joined2 := strings.Join(ex2.Notes, "; ")
	if !strings.Contains(joined2, "Name: misspelling") {
		t.Errorf("explanation misses Name misspelling: %v", ex2.Notes)
	}
	if !strings.Contains(joined2, "City: abbreviation") {
		t.Errorf("explanation misses City abbreviation: %v", ex2.Notes)
	}
}

func TestProblemSummary(t *testing.T) {
	a, b, c, _ := figure1(t)
	d, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matches := []blocker.Pair{{A: 0, B: 0}, {A: 2, B: 1}}
	counts := d.ProblemCount(matches)
	if counts["City: misspelling"] != 1 || counts["City: abbreviation"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	top := d.TopProblems(matches, 2)
	if len(top) != 2 {
		t.Errorf("top problems = %v", top)
	}
}

func TestDiagnoseKinds(t *testing.T) {
	cases := []struct {
		va, vb string
		want   Problem
	}{
		{"atlanta", "atlanta", ProblemNone},
		{"", "atlanta", ProblemMissing},
		{"altanta", "atlanta", ProblemMisspelling},
		{"new york", "ny", ProblemAbbreviation},
		{"dave smith", "dave frederic smith", ProblemWordSubset},
		{"dave smith", "dave jones", ProblemPartial},
		{"alpha", "omega", ProblemDisjoint},
	}
	for _, c := range cases {
		if got := diagnose("x", c.va, c.vb).Problem; got != c.want {
			t.Errorf("diagnose(%q,%q) = %v, want %v", c.va, c.vb, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, Options{}); err == nil {
		t.Error("want error for nil tables")
	}
	a := table.MustNew("A", []string{"x"})
	b := table.MustNew("B", []string{"y"})
	if _, err := New(a, b, nil, Options{}); err == nil {
		t.Error("want error for disjoint schemas")
	}
}

// TestEndToEndFodorsZagats debugs a real blocker on the F-Z profile: the
// debugger must recover a large share of the matches the blocker killed
// (the Table 3 F-Z rows recover 92-100%).
func TestEndToEndFodorsZagats(t *testing.T) {
	d := datagen.MustGenerate(datagen.FodorsZagats())
	c, err := blocker.NewAttrEquivalence("city").Block(d.A, d.B)
	if err != nil {
		t.Fatal(err)
	}
	killed := d.KilledMatches(c)
	if len(killed) == 0 {
		t.Skip("blocker killed nothing on this profile")
	}
	dbg, err := New(d.A, d.B, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := oracle.New(d.Gold, 0, 2)
	res := dbg.Run(u.Label)
	// Every reported match is a true killed-off match.
	for _, p := range res.Matches {
		if !d.Gold.Contains(p.A, p.B) {
			t.Errorf("false positive match %v", p)
		}
		if c.Contains(p.A, p.B) {
			t.Errorf("match %v was not killed off", p)
		}
	}
	if got := len(res.Matches); got*2 < len(killed) {
		t.Errorf("recovered %d of %d killed matches", got, len(killed))
	}
	if dbg.CandidateCount() == 0 {
		t.Error("E is empty")
	}
}

func TestRowRendering(t *testing.T) {
	a, b, c, _ := figure1(t)
	d, err := New(a, b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := d.RowA(0)
	joined := strings.Join(row, " ")
	if !strings.Contains(joined, "Name=Dave Smith") || !strings.Contains(joined, "City=Altanta") {
		t.Errorf("RowA = %v", row)
	}
	if got := strings.Join(d.RowB(0), " "); !strings.Contains(got, "David Smith") {
		t.Errorf("RowB = %v", got)
	}
}
