package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"matchcatcher/internal/ranker"
	"matchcatcher/internal/telemetry"
)

// TestFinishIdempotent: a server draining a session a client already
// finished calls Finish twice; the second call must be a no-op, and
// Next/Feedback after Finish must refuse instead of reopening spans
// under an ended root.
func TestFinishIdempotent(t *testing.T) {
	a, b, c, _ := figure1(t)
	reg := telemetry.New()
	d, err := New(a, b, c, Options{Metrics: reg, Verifier: ranker.Options{N: 3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Finished() {
		t.Fatal("fresh session reports Finished")
	}
	d.Finish()
	if !d.Finished() {
		t.Fatal("Finish did not mark the session finished")
	}
	d.Finish() // must not panic or double-End the root span
	if got := d.Next(); got != nil {
		t.Errorf("Next after Finish = %v, want nil", got)
	}
	if err := d.Feedback([]bool{true}); err == nil {
		t.Error("Feedback after Finish: want error, got nil")
	} else if !strings.Contains(err.Error(), "after Finish") {
		t.Errorf("Feedback after Finish: err = %v", err)
	}
	// The report still renders on a finished session.
	var buf bytes.Buffer
	if err := d.WriteCanonicalReport(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestNewCancelled: a cancelled context must abort pipeline construction
// with the context's error rather than returning a half-built session.
func TestNewCancelled(t *testing.T) {
	a, b, c, _ := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(a, b, c, Options{
		Ctx:     ctx,
		Metrics: telemetry.Disabled(),
	})
	if err == nil {
		t.Fatal("New with a cancelled context: want error, got nil")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("err = %v, want a join-cancelled error", err)
	}
}

// TestConcurrentDrivers: the one-lock-domain-per-session contract. Many
// goroutines interleave Next/Feedback with read accessors and redundant
// Finish calls on one Debugger; under -race this must be clean, and the
// session must end in a consistent finished state.
func TestConcurrentDrivers(t *testing.T) {
	a, b, c, gold := figure1(t)
	d, err := New(a, b, c, Options{
		Metrics:  telemetry.New(),
		Verifier: ranker.Options{N: 3, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20 && !d.Done(); i++ {
				pairs := d.Next()
				if len(pairs) == 0 {
					return
				}
				labels := make([]bool, len(pairs))
				for j, p := range pairs {
					labels[j] = gold.Contains(p.A, p.B)
				}
				// A racing driver may have answered a different batch
				// first; a size-mismatch error is fine, a panic is not.
				_ = d.Feedback(labels)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = d.Ranking()
				_ = d.Matches()
				_ = d.Iterations()
				_ = d.CanonicalReport()
			}
		}()
	}
	wg.Wait()
	d.Finish()
	d.Finish()
	if !d.Finished() {
		t.Error("session not finished")
	}
}
