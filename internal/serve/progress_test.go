package serve

// Tests for the join progress surface: the JSON snapshot endpoint, the
// SSE stream (mid-join frames, clean terminal frame, teardown on client
// disconnect and on join cancellation), and the determinism contract
// that streaming progress does not perturb the canonical report.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"matchcatcher/internal/datagen"
)

// progressTables generates a table pair big enough that its join runs
// for several hundred milliseconds on one core — long enough for an SSE
// client to observe genuinely mid-join frames.
func progressTables(t *testing.T) (aCSV, bCSV string) {
	t.Helper()
	d := datagen.MustGenerate(datagen.Profile{
		Name: "sse", RowsA: 2500, RowsB: 2500, Matches: 600,
		VocabSize: 400, Seed: 9, GoldKnown: true,
		Fields: []datagen.FieldSpec{
			{Name: "Title", Kind: datagen.FieldPhrase, MinWords: 6, MaxWords: 12},
			{Name: "City", Kind: datagen.FieldPool, PoolSize: 15, PoolVariants: 0.3, BVariantProb: 0.3},
			{Name: "Age", Kind: datagen.FieldInt, Lo: 18, Hi: 80},
		},
	})
	var a, b bytes.Buffer
	if err := d.A.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.B.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return a.String(), b.String()
}

// prepareJoinable creates a session and walks it to the blocked state.
func prepareJoinable(t *testing.T, base, createBody, aCSV, bCSV string) string {
	t.Helper()
	id := createSession(t, base, createBody)
	su := base + "/v1/sessions/" + id
	code, data := do(t, "PUT", su+"/tables/a?name=A", aCSV)
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "PUT", su+"/tables/b?name=B", bCSV)
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`)
	mustJSON(t, http.StatusOK, code, data, nil)
	return id
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  progressResponse
}

// readSSE parses an event-stream body into frames until EOF or error.
func readSSE(t *testing.T, body io.Reader, frames chan<- sseFrame) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			var resp progressResponse
			if err := json.Unmarshal([]byte(data), &resp); err != nil {
				t.Errorf("bad SSE data for event %q: %v\n%s", event, err, data)
			}
			frames <- sseFrame{event: event, data: resp}
			event, data = "", ""
		}
	}
	close(frames)
}

// openSSE issues the progress request with the event-stream Accept
// header and returns the frame channel plus the response closer.
func openSSE(t *testing.T, ctx context.Context, url string) (<-chan sseFrame, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	frames := make(chan sseFrame, 1024)
	go readSSE(t, resp.Body, frames)
	return frames, func() { resp.Body.Close() }
}

const progressSessionBody = `{"seed":1,"k":500,"n":3,"workers":1,"probe_workers":2}`

// TestProgressEndpointLifecycle drives the full surface on one session:
// 409 before any join, mid-join JSON and SSE frames observed from a
// second goroutine while the join request runs, a clean terminal frame,
// and a final-state snapshot after completion.
func TestProgressEndpointLifecycle(t *testing.T) {
	aCSV, bCSV := progressTables(t)
	_, ts := newTestServer(t, Options{ProgressInterval: 2 * time.Millisecond})
	id := prepareJoinable(t, ts.URL, progressSessionBody, aCSV, bCSV)
	su := ts.URL + "/v1/sessions/" + id

	// Before any join attempt the endpoint answers 409, like every
	// other join-dependent route.
	if code, _ := do(t, "GET", su+"/progress", ""); code != http.StatusConflict {
		t.Fatalf("progress before join: status %d, want 409", code)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var joinCode int
	go func() {
		defer wg.Done()
		joinCode, _ = do(t, "POST", su+"/join", "")
	}()
	t.Cleanup(wg.Wait)

	// Poll the JSON endpoint until the join attempt is visible.
	var snap progressResponse
	for {
		code, data := do(t, "GET", su+"/progress", "")
		if code == http.StatusOK {
			mustJSON(t, http.StatusOK, code, data, &snap)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if snap.Session != id {
		t.Errorf("snapshot session = %q, want %q", snap.Session, id)
	}

	// Stream until the terminal frame, counting what we saw.
	frames, closeStream := openSSE(t, context.Background(), su+"/progress")
	defer closeStream()
	var midJoin, total int
	var terminal *sseFrame
	for f := range frames {
		switch f.event {
		case "progress":
			total++
			if f.data.Joining && !f.data.Join.Done {
				midJoin++
			}
		case "done":
			terminal = &f
		default:
			t.Errorf("unexpected SSE event %q", f.event)
		}
		if terminal != nil {
			break
		}
	}
	if terminal == nil {
		t.Fatal("stream ended without a terminal done frame")
	}
	if total == 0 {
		t.Error("no progress frames before the terminal frame")
	}
	if midJoin == 0 {
		t.Error("no mid-join frames: the stream never observed the running join")
	}
	fin := terminal.data
	if fin.Joining {
		t.Error("terminal frame still marked joining")
	}
	if !fin.Join.Done || fin.Join.Cancelled {
		t.Errorf("terminal frame join state: done=%v cancelled=%v", fin.Join.Done, fin.Join.Cancelled)
	}
	if fin.Join.Fraction != 1 {
		t.Errorf("terminal fraction = %v, want 1", fin.Join.Fraction)
	}
	if fin.Join.ProbesDone+fin.Join.ProbesSkipped != fin.Join.ProbesTotal {
		t.Errorf("terminal accounting: done %d + skipped %d != total %d",
			fin.Join.ProbesDone, fin.Join.ProbesSkipped, fin.Join.ProbesTotal)
	}
	if len(fin.Join.Shards) == 0 || fin.Join.Skew.Shards == 0 {
		t.Errorf("terminal frame lacks shard detail: %+v", fin.Join)
	}

	wg.Wait()
	if joinCode != http.StatusOK {
		t.Fatalf("join status = %d", joinCode)
	}
	// After completion the JSON endpoint answers the final snapshot.
	code, data := do(t, "GET", su+"/progress", "")
	mustJSON(t, http.StatusOK, code, data, &snap)
	if snap.State != "joined" || snap.Joining || !snap.Join.Done {
		t.Errorf("post-join snapshot = state %q joining %v done %v", snap.State, snap.Joining, snap.Join.Done)
	}
}

// TestProgressSSEClientDisconnect cancels the streaming client mid-join
// and checks the stream tears down while the join runs to completion
// undisturbed.
func TestProgressSSEClientDisconnect(t *testing.T) {
	aCSV, bCSV := progressTables(t)
	_, ts := newTestServer(t, Options{ProgressInterval: 2 * time.Millisecond})
	id := prepareJoinable(t, ts.URL, progressSessionBody, aCSV, bCSV)
	su := ts.URL + "/v1/sessions/" + id

	var wg sync.WaitGroup
	wg.Add(1)
	var joinCode int
	go func() {
		defer wg.Done()
		joinCode, _ = do(t, "POST", su+"/join", "")
	}()
	t.Cleanup(wg.Wait)
	for {
		if code, _ := do(t, "GET", su+"/progress", ""); code == http.StatusOK {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	frames, closeStream := openSSE(t, ctx, su+"/progress")
	defer closeStream()
	// One live frame proves the stream was up; then hang up.
	if _, ok := <-frames; !ok {
		t.Fatal("stream closed before the first frame")
	}
	cancel()
	// The reader goroutine must see the stream end promptly (the handler
	// noticed ctx.Done and returned; the transport closed the body).
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-frames:
			if !ok {
				goto torndown
			}
		case <-deadline:
			t.Fatal("stream did not tear down after client disconnect")
		}
	}
torndown:
	wg.Wait()
	if joinCode != http.StatusOK {
		t.Fatalf("join after disconnected stream: status %d", joinCode)
	}
	var snap progressResponse
	code, data := do(t, "GET", su+"/progress", "")
	mustJSON(t, http.StatusOK, code, data, &snap)
	if !snap.Join.Done || snap.Join.Fraction != 1 {
		t.Errorf("join hurt by client disconnect: %+v", snap.Join)
	}
}

// TestProgressSSEJoinCancelled cancels the join request mid-flight: the
// SSE stream must receive its terminal frame (the join attempt ended,
// albeit unsuccessfully) and the session must fall back to blocked,
// ready for another join.
func TestProgressSSEJoinCancelled(t *testing.T) {
	aCSV, bCSV := progressTables(t)
	_, ts := newTestServer(t, Options{ProgressInterval: 2 * time.Millisecond})
	id := prepareJoinable(t, ts.URL, progressSessionBody, aCSV, bCSV)
	su := ts.URL + "/v1/sessions/" + id

	joinCtx, cancelJoin := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, err := http.NewRequestWithContext(joinCtx, "POST", su+"/join", nil)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			// The cancel may lose the race and let the join finish; the
			// test below tolerates either outcome.
			resp.Body.Close()
		}
	}()
	t.Cleanup(wg.Wait)
	for {
		if code, _ := do(t, "GET", su+"/progress", ""); code == http.StatusOK {
			break
		}
		time.Sleep(time.Millisecond)
	}

	frames, closeStream := openSSE(t, context.Background(), su+"/progress")
	defer closeStream()
	if _, ok := <-frames; !ok {
		t.Fatal("stream closed before the first frame")
	}
	cancelJoin()

	deadline := time.After(10 * time.Second)
	var terminal *sseFrame
	for terminal == nil {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatal("stream closed without a terminal frame")
			}
			if f.event == "done" {
				terminal = &f
			}
		case <-deadline:
			t.Fatal("no terminal frame after join cancellation")
		}
	}
	if terminal.data.Joining {
		t.Error("terminal frame still marked joining")
	}
	wg.Wait()
	// Whichever way the race went, the session settles in a consistent
	// state: blocked again (join aborted) or joined (cancel too late).
	var info sessionInfo
	code, data := do(t, "GET", su, "")
	mustJSON(t, http.StatusOK, code, data, &info)
	switch info.State {
	case "blocked":
		if terminal.data.Join.Done && !terminal.data.Join.Cancelled {
			t.Errorf("aborted join's terminal frame claims a clean finish: %+v", terminal.data.Join)
		}
		// The session accepts a fresh join after the aborted attempt.
		if code, _ := do(t, "POST", su+"/join", ""); code != http.StatusOK {
			t.Errorf("re-join after cancelled join: status %d", code)
		}
	case "joined":
		if !terminal.data.Join.Done {
			t.Errorf("completed join's terminal frame not done: %+v", terminal.data.Join)
		}
	default:
		t.Errorf("session state after cancelled join = %q", info.State)
	}
}

// TestReportIdenticalWithProgressStreaming is the observer-effect
// contract end to end: a session whose join was watched by a live SSE
// stream produces a canonical report byte-identical to an unwatched
// session's.
func TestReportIdenticalWithProgressStreaming(t *testing.T) {
	_, ts := newTestServer(t, Options{ProgressInterval: time.Millisecond})
	want := scriptSession(t, ts.URL, sessionBody)

	// Second run: same script, but with an SSE stream attached from
	// before the join until its terminal frame.
	id := createSession(t, ts.URL, sessionBody)
	su := ts.URL + "/v1/sessions/" + id
	gold := goldSet()
	code, data := do(t, "PUT", su+"/tables/a?name=A", tableACSV)
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "PUT", su+"/tables/b?name=B", tableBCSV)
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`)
	mustJSON(t, http.StatusOK, code, data, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Poll until the join attempt is visible, then stream it.
		for {
			if code, _ := do(t, "GET", su+"/progress", ""); code == http.StatusOK {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		frames, closeStream := openSSE(t, context.Background(), su+"/progress")
		defer closeStream()
		for f := range frames {
			if f.event == "done" {
				return
			}
		}
	}()
	code, data = do(t, "POST", su+"/join", "")
	mustJSON(t, http.StatusOK, code, data, nil)
	wg.Wait()

	for i := 0; i < 50; i++ {
		code, data = do(t, "POST", su+"/next", "")
		var next struct {
			Pairs []shownPair `json:"pairs"`
			Done  bool        `json:"done"`
		}
		mustJSON(t, http.StatusOK, code, data, &next)
		if next.Done {
			break
		}
		labels := make([]string, len(next.Pairs))
		for j, p := range next.Pairs {
			labels[j] = fmt.Sprintf("%v", gold.Contains(p.A, p.B))
		}
		code, data = do(t, "POST", su+"/labels",
			fmt.Sprintf(`{"labels":[%s]}`, strings.Join(labels, ",")))
		mustJSON(t, http.StatusOK, code, data, nil)
	}
	code, data = do(t, "POST", su+"/finish", "")
	mustJSON(t, http.StatusOK, code, data, nil)
	code, got := do(t, "GET", su+"/report", "")
	if code != http.StatusOK {
		t.Fatalf("report status = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("canonical report differs when an SSE progress stream watched the join:\n--- watched ---\n%s\n--- unwatched ---\n%s", got, want)
	}
}

// TestWantsEventStream pins the Accept-header sniffing.
func TestWantsEventStream(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"text/event-stream", true},
		{"text/event-stream; charset=utf-8", true},
		{"application/json, text/event-stream", true},
		{"text/html,application/xhtml+xml", false},
	}
	for _, c := range cases {
		r, _ := http.NewRequest("GET", "/", nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := wantsEventStream(r); got != c.want {
			t.Errorf("wantsEventStream(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}
