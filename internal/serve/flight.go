package serve

import (
	"net/http"
	"sort"
	"sync"

	"matchcatcher/internal/telemetry"
)

// The serve layer's flight-recorder integration: every request and
// every session state transition becomes one wide event in the server's
// bounded ring (see telemetry.FlightRecorder), and the same wide event
// is the source of the request's single canonical log line. Recording
// is observe-only — a request mutates only its own local event; the
// in-flight table below holds value copies under its own mutex — so
// none of this touches a session's join hot path.

// inflightTable tracks session requests currently executing, so a
// flight dump taken mid-request (drain begin, SIGQUIT,
// /debug/flightrecord) still shows what the server was doing — the
// evidence a post-mortem needs when a request never finished. Only
// session routes register (the requests that can run long: joins);
// envelope-only routes finish in microseconds and would pay the table's
// two mutex hops for nothing. Entries are value copies registered after
// annotation: the request goroutine owns its local event, so dump
// readers never race request writers.
type inflightTable struct {
	mu   sync.Mutex
	next uint64
	reqs map[uint64]telemetry.FlightEvent
}

// add registers a request's wide event and returns its tracking token.
func (t *inflightTable) add(ev telemetry.FlightEvent) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.reqs == nil {
		t.reqs = make(map[uint64]telemetry.FlightEvent)
	}
	t.next++
	t.reqs[t.next] = ev
	return t.next
}

func (t *inflightTable) remove(token uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.reqs, token)
}

// snapshot returns the in-flight events oldest-first, marked Inflight.
func (t *inflightTable) snapshot() []telemetry.FlightEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	tokens := make([]uint64, 0, len(t.reqs))
	for tok := range t.reqs {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	out := make([]telemetry.FlightEvent, 0, len(tokens))
	for _, tok := range tokens {
		ev := t.reqs[tok]
		ev.Inflight = true
		out = append(out, ev)
	}
	return out
}

// eventOf recovers the request's wide event from the response writer
// the envelope installed, so handlers (writeError, session create) can
// annotate it without new plumbing. Nil when the writer is not ours —
// callers must tolerate that.
func eventOf(w http.ResponseWriter) *telemetry.FlightEvent {
	if sw, ok := w.(*statusWriter); ok {
		return sw.ev
	}
	return nil
}

// flightDump assembles the full dump: ring events, in-flight requests,
// and the stamped machine context (build, mc_runtime_* gauges).
func (s *Server) flightDump(reason string) *telemetry.FlightDump {
	d := s.flight.Dump()
	d.Inflight = s.inflightReqs.snapshot()
	return d.Stamp(reason, s.reg)
}

// handleFlightRecord serves GET /debug/flightrecord. It stays available
// while draining — the dump is most valuable exactly then.
func (s *Server) handleFlightRecord(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.flightDump("http").WriteJSON(w); err != nil {
		s.log.Error("flight record write failed", "err", err)
	}
}

// DumpFlightRecord writes the current flight record to
// Options.FlightDumpPath (no-op when unset). The server calls it
// automatically at drain begin and again after Close; mcserve also
// calls it on SIGQUIT, the classic "show me what you're doing right
// now" signal.
func (s *Server) DumpFlightRecord(reason string) error {
	if s.opt.FlightDumpPath == "" {
		return nil
	}
	return s.flightDump(reason).WriteFile(s.opt.FlightDumpPath)
}

// dumpFlightToDisk is DumpFlightRecord with logging instead of error
// returns, for the shutdown paths that cannot do better than log.
func (s *Server) dumpFlightToDisk(reason string) {
	if s.opt.FlightDumpPath == "" {
		return
	}
	if err := s.DumpFlightRecord(reason); err != nil {
		s.log.Error("flight dump failed", "path", s.opt.FlightDumpPath, "reason", reason, "err", err)
	} else {
		s.log.Info("flight record dumped", "path", s.opt.FlightDumpPath, "reason", reason)
	}
}

// transition records a session state transition (created, finished,
// deleted, evicted_idle, evicted_lru, shutdown) as a wide event and
// emits its canonical log line. The one path session lifecycle
// observability flows through.
func (s *Server) transition(sess *session, what string) {
	s.flight.Record(telemetry.FlightEvent{
		Kind:    "session",
		Route:   what,
		Session: sess.id,
		TraceID: sess.root.TraceID(),
	})
	s.log.Info("session", "transition", what, "session", sess.id)
}

// logRequest emits the request's canonical log line — one structured
// record per request, at request end, from the same wide event the
// flight ring retains (so logs, metrics, and the flight record can
// never disagree about what happened).
func (s *Server) logRequest(ev *telemetry.FlightEvent) {
	attrs := make([]any, 0, 22)
	attrs = append(attrs,
		"route", ev.Route,
		"method", ev.Method,
		"status", ev.Status,
		"dur_us", ev.DurMicros,
	)
	if ev.Session != "" {
		attrs = append(attrs, "session", ev.Session)
	}
	if ev.TraceID != 0 {
		attrs = append(attrs, "trace_id", ev.TraceID, "span_id", ev.SpanID)
	}
	if ev.BytesIn > 0 {
		attrs = append(attrs, "bytes_in", ev.BytesIn)
	}
	if ev.BytesOut > 0 {
		attrs = append(attrs, "bytes_out", ev.BytesOut)
	}
	if ev.Err != "" {
		attrs = append(attrs, "error", ev.Err)
	}
	if ev.Slow {
		attrs = append(attrs, "slow", true)
	}
	s.log.Info("request", attrs...)
}
