package serve

// Join progress surface: GET /v1/sessions/{id}/progress answers a JSON
// snapshot of the session's join tracker, or — when the client sends
// Accept: text/event-stream — a live SSE stream of snapshots while the
// join runs. The tracker's snapshots are lock-free reads of atomic
// counters, so neither mode touches session.mu after the initial fetch
// and a polling client never stalls the join (DESIGN.md "Join progress
// & skew observability").

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"matchcatcher/internal/ssjoin"
)

// progressResponse is the wire shape of one progress frame: the
// session's lifecycle state plus the join tracker's snapshot.
type progressResponse struct {
	Session string                  `json:"session"`
	State   string                  `json:"state"`
	Joining bool                    `json:"joining"`
	Join    ssjoin.ProgressSnapshot `json:"join"`
}

// handleProgress serves the join progress surface. Before any join has
// started the answer is 409, mirroring requireDebugger's contract; once
// a join attempt exists the handler answers for it whether it is still
// running or long finished.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request, sess *session) {
	sess.mu.Lock()
	prog, joinDone := sess.prog, sess.joinDone
	joining := sess.joining
	sess.mu.Unlock()
	if prog == nil {
		writeError(w, http.StatusConflict, "no join has started; POST to /join first")
		return
	}
	if wantsEventStream(r) {
		s.streamProgress(w, r, sess, prog, joinDone)
		return
	}
	writeJSON(w, http.StatusOK, progressResponse{
		Session: sess.id,
		State:   sess.state(),
		Joining: joining,
		Join:    prog.Snapshot(),
	})
}

// wantsEventStream reports whether the client asked for SSE.
func wantsEventStream(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mediaType := strings.TrimSpace(part)
			if i := strings.IndexByte(mediaType, ';'); i >= 0 {
				mediaType = strings.TrimSpace(mediaType[:i])
			}
			if mediaType == "text/event-stream" {
				return true
			}
		}
	}
	return false
}

// streamProgress emits `event: progress` frames every ProgressInterval
// while the join runs, then one terminal `event: done` frame, and tears
// down on whichever comes first: join completion (joinDone), client
// disconnect, or the request deadline (both via the request context).
// An SSE request against an already-finished join degenerates to the
// terminal frame alone.
func (s *Server) streamProgress(w http.ResponseWriter, r *http.Request, sess *session, prog *ssjoin.Progress, joinDone <-chan struct{}) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	emit := func(event string) error {
		frame := progressResponse{
			Session: sess.id,
			State:   sess.state(),
			Joining: event == "progress",
			Join:    prog.Snapshot(),
		}
		data, err := json.Marshal(frame)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	ticker := time.NewTicker(s.opt.ProgressInterval)
	defer ticker.Stop()
	if err := emit("progress"); err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			// Client went away or the request deadline fired: stop
			// streaming. The join itself is owned by the join request's
			// context, not this one, and keeps running.
			return
		case <-joinDone:
			_ = emit("done")
			return
		case <-ticker.C:
			if err := emit("progress"); err != nil {
				return
			}
		}
	}
}
