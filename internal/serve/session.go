package serve

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// sessionConfig is the immutable per-session configuration fixed at
// creation: the same knobs mcdebug takes on its command line, so a
// scripted HTTP session can reproduce a CLI session exactly.
type sessionConfig struct {
	Seed         int64
	K            int
	N            int
	Workers      int
	ProbeWorkers int
	Watch        [][2]int
}

// session is one tenant: the state a single mcdebug invocation owns,
// plus private telemetry so tenants never share mutable observability
// state. Two lock domains govern it: Server.mu guards the scheduling
// fields (lastUsed, inflight — what eviction reads), and session.mu
// guards the debugging state below it. The core.Debugger carries its
// own internal lock, so handlers may call it with or without session.mu
// held.
type session struct {
	id      string
	created time.Time
	cfg     sessionConfig

	// Guarded by Server.mu (the scheduler's lock, not the session's).
	lastUsed time.Time
	inflight int

	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	root   *telemetry.TraceSpan // serve.session — parent of all request spans
	prov   *telemetry.Provenance
	log    *slog.Logger

	mu       sync.Mutex //mc:lockrank 2 — the session's lock domain
	st       sessionState
	memUsed  int64
	a, b     *table.Table
	q        blocker.Blocker
	c        *blocker.PairSet
	joining  bool // a join request is building the Debugger
	dbg      *core.Debugger
	joinedAt time.Time
	recorded bool // ledger record written (exactly once per completed session)

	// Join observability: prog is the live tracker attached to the most
	// recent join attempt (its snapshots are lock-free, so the progress
	// handler reads it without holding mu) and joinDone is closed when
	// that attempt ends, however it ends — success, error, or
	// cancellation — so SSE streams tear down promptly. Both are fresh
	// per attempt and stay readable after it: a progress request on a
	// joined session answers the final snapshot.
	prog     *ssjoin.Progress
	joinDone chan struct{}
}

func newSession(id string, cfg sessionConfig, log *slog.Logger) *session {
	reg := telemetry.New()
	tracer := telemetry.NewTracer(reg)
	root := tracer.Start("serve.session", telemetry.L("session", id))
	now := time.Now()
	return &session{
		id:       id,
		created:  now,
		lastUsed: now,
		cfg:      cfg,
		reg:      reg,
		tracer:   tracer,
		root:     root,
		prov:     telemetry.NewProvenance(cfg.Watch...),
		log:      telemetry.LoggerOr(log).With("session", id),
	}
}

// state returns the wire name of the session's lifecycle phase.
func (sess *session) state() string {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.st.String()
}

// debugger returns the session's Debugger, or nil before the join.
func (sess *session) debugger() *core.Debugger {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.dbg
}

// closeSession finishes a session removed from the table (deleted,
// evicted, or drained at shutdown): it finishes the Debugger (idempotent
// if the client already did), ends the serve.session span, and appends
// the session's ledger record if the session ever joined and no record
// was written yet.
func (s *Server) closeSession(sess *session, reason string) {
	sess.mu.Lock()
	var advErr error
	if sess.dbg != nil {
		sess.dbg.Finish()
		// An unfinished joined session finishes now; an explicit
		// /finish already advanced (finished→finished self-loop).
		advErr = sess.advanceLocked(stateFinished)
	}
	sess.root.End()
	rec, record := s.sessionRecordLocked(sess)
	sess.mu.Unlock()
	if advErr != nil {
		s.log.Error("close transition failed", "session", sess.id, "err", advErr)
	}
	// The ledger append does file I/O; it must not run under sess.mu
	// (the lockorder analyzer enforces this).
	if record {
		if err := runlog.Append(s.opt.LedgerPath, rec); err != nil {
			s.log.Error("ledger append failed", "session", sess.id, "err", err)
		}
	}
	s.transition(sess, closeTransition(reason))
}

// closeTransition maps a close reason onto the session transition name
// the flight record uses.
func closeTransition(reason string) string {
	switch reason {
	case "idle":
		return "evicted_idle"
	case "lru":
		return "evicted_lru"
	default: // "deleted", "shutdown"
		return reason
	}
}

// sessionRecordLocked builds the session's runlog record — one per
// completed session, however it completes (explicit finish, delete,
// idle/LRU eviction, shutdown drain) — and marks the session recorded.
// Caller holds sess.mu; the append itself is the caller's job, after
// releasing the lock, because runlog.Append does file I/O.
func (s *Server) sessionRecordLocked(sess *session) (runlog.Record, bool) {
	if sess.recorded || sess.dbg == nil || s.opt.LedgerPath == "" {
		return runlog.Record{}, false
	}
	sess.recorded = true
	blockerName := ""
	if sess.q != nil {
		blockerName = sess.q.Name()
	}
	rec := runlog.New("mcserve", "session", sess.cfg.Seed, map[string]any{
		"session": sess.id, "blocker": blockerName,
		"k": sess.cfg.K, "n": sess.cfg.N,
		"workers": sess.cfg.Workers, "probe_workers": sess.cfg.ProbeWorkers,
	})
	rec.Metrics = map[string]float64{
		"mcserve:iterations":    float64(sess.dbg.Iterations()),
		"mcserve:matches_found": float64(len(sess.dbg.Matches())),
		"mcserve:wall_seconds":  time.Since(sess.joinedAt).Seconds(),
	}
	rec.AttachTelemetry(sess.reg)
	return rec, true
}

// admit creates a session under admission control: at MaxSessions it
// evicts the LRU idle session, and if every session is busy it refuses
// (the caller answers 429). A draining server refuses outright (503).
func (s *Server) admit(cfg sessionConfig) (*session, error) {
	var victim *session
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	if len(s.sessions) >= s.opt.MaxSessions {
		victim = s.lruIdleLocked()
		if victim == nil {
			s.mu.Unlock()
			s.reg.Counter("mc_serve_admission_rejected_total").Inc()
			return nil, errBusy
		}
		delete(s.sessions, victim.id)
	}
	s.nextID++
	sess := newSession(fmt.Sprintf("s%06d", s.nextID), cfg, s.opt.Logger)
	s.sessions[sess.id] = sess
	live := len(s.sessions)
	s.mu.Unlock()

	if victim != nil {
		s.closeSession(victim, "lru")
		s.reg.Counter("mc_serve_sessions_evicted_total", telemetry.L("reason", "lru")).Inc()
	}
	s.reg.Counter("mc_serve_sessions_created_total").Inc()
	s.reg.Gauge("mc_serve_sessions_live").Set(float64(live))
	s.transition(sess, "created")
	return sess, nil
}

// remove unlinks a session from the table (the delete handler's first
// half; closeSession is the second).
func (s *Server) remove(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	live := len(s.sessions)
	s.mu.Unlock()
	s.reg.Gauge("mc_serve_sessions_live").Set(float64(live))
}
