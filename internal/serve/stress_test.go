package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSessions drives many complete debugging sessions in
// parallel against one server — live registries, tracers, and
// provenance recorders in every tenant — while background goroutines
// hammer the read-only routes. Run under -race (CI does) it is the
// isolation proof for the one-lock-domain-per-session design and the
// serialized blocker hooks; in any mode it asserts every tenant's
// canonical report is byte-identical to the serial reference, i.e.
// concurrency never bleeds state across sessions.
func TestConcurrentSessions(t *testing.T) {
	_, ref := newTestServer(t, Options{})
	want := scriptSession(t, ref.URL, sessionBody)

	const tenants = 6
	_, ts := newTestServer(t, Options{MaxSessions: tenants + 1})
	var wg sync.WaitGroup
	reports := make([][]byte, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = scriptSession(t, ts.URL, sessionBody)
		}(i)
	}
	// Read-only traffic interleaved with the sessions.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/healthz", "/readyz", "/v1/sessions", "/metrics"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	for i, got := range reports {
		if !bytes.Equal(got, want) {
			t.Errorf("tenant %d: report differs from the serial reference", i)
		}
	}
}

// TestConcurrentDriversOneSession points several goroutines at a single
// session — Next/Feedback racing with candidate pagination, reports, and
// explains — and checks the session survives as one consistent
// conversation: no torn iterations, and the final report is valid.
func TestConcurrentDriversOneSession(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL, sessionBody)
	su := ts.URL + "/v1/sessions/" + id
	do(t, "PUT", su+"/tables/a?name=A", tableACSV)
	do(t, "PUT", su+"/tables/b?name=B", tableBCSV)
	do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`)
	if code, body := do(t, "POST", su+"/join", ""); code != http.StatusOK {
		t.Fatalf("join: %d %s", code, body)
	}

	gold := goldSet()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				code, data := do(t, "POST", su+"/next", "")
				if code != http.StatusOK {
					return // another driver finished the session
				}
				var next struct {
					Pairs []shownPair `json:"pairs"`
					Done  bool        `json:"done"`
				}
				mustJSON(t, http.StatusOK, code, data, &next)
				if next.Done {
					return
				}
				labels := make([]string, len(next.Pairs))
				for j, p := range next.Pairs {
					labels[j] = fmt.Sprintf("%v", gold.Contains(p.A, p.B))
				}
				// A racing driver may have fed back first; 400 (stale
				// batch size) is acceptable, 5xx is not.
				code, _ = do(t, "POST", su+"/labels",
					fmt.Sprintf(`{"labels":[%s]}`, strings.Join(labels, ",")))
				if code >= 500 {
					t.Errorf("labels: status %d", code)
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				do(t, "GET", su+"/candidates?limit=10", "")
				do(t, "GET", su+"/report", "")
				do(t, "GET", su+"/explain?a=1&b=2", "")
			}
		}()
	}
	wg.Wait()
	if code, body := do(t, "POST", su+"/finish", ""); code != http.StatusOK {
		t.Fatalf("finish: %d %s", code, body)
	}
	code, body := do(t, "GET", su+"/report", "")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"table_a"`)) {
		t.Errorf("final report: %d %s", code, body)
	}
}
