package serve

import "fmt"

// sessionState is the session lifecycle the HTTP API exposes:
//
//	created → tables → blocked → joined → finished
//
// The zero value is stateCreated, so a freshly admitted session needs
// no initialization. tables and blocked are re-enterable (clients may
// re-upload a table or re-run the blocker until the join freezes the
// inputs); joined is entered exactly once; finished absorbs repeats so
// an explicit /finish followed by eviction stays idempotent.
//
// The statemachine analyzer enforces the shape mechanically: the st
// field is written only inside advanceLocked, and every switch over the
// type must be exhaustive.
//
//mc:statemachine
type sessionState int

const (
	stateCreated sessionState = iota
	stateTables
	stateBlocked
	stateJoined
	stateFinished
)

// String returns the wire name of the state, the exact strings the
// sessionInfo.State field has always carried.
func (st sessionState) String() string {
	switch st {
	case stateCreated:
		return "created"
	case stateTables:
		return "tables"
	case stateBlocked:
		return "blocked"
	case stateJoined:
		return "joined"
	case stateFinished:
		return "finished"
	}
	return fmt.Sprintf("sessionState(%d)", int(st))
}

// advanceLocked is the single sanctioned mutation point of a session's
// lifecycle state. Caller holds sess.mu. Invalid transitions leave the
// state untouched and return an error; the handlers' own guards make
// those unreachable, so an error here means a handler guard regressed.
//
//mc:statetransition
func (sess *session) advanceLocked(to sessionState) error {
	valid := false
	switch to {
	case stateCreated:
		// Sessions are born created (the zero value); nothing returns.
	case stateTables:
		valid = sess.st == stateCreated || sess.st == stateTables
	case stateBlocked:
		valid = sess.st == stateTables || sess.st == stateBlocked
	case stateJoined:
		valid = sess.st == stateBlocked
	case stateFinished:
		valid = sess.st == stateJoined || sess.st == stateFinished
	}
	if !valid {
		return fmt.Errorf("invalid session transition %v -> %v", sess.st, to)
	}
	sess.st = to
	return nil
}
