package serve

import (
	"bytes"
	"strings"
	"testing"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// cliReport drives the exact pipeline mcdebug drives — same construction
// path (blocker.BuildFromRules + blocker.BlockScoped), same options,
// gold-labeled loop — and returns the canonical report bytes the CLI's
// -canonical -report flags would write.
func cliReport(t *testing.T) []byte {
	t.Helper()
	a, err := table.ReadCSV("A", strings.NewReader(tableACSV))
	if err != nil {
		t.Fatal(err)
	}
	b, err := table.ReadCSV("B", strings.NewReader(tableBCSV))
	if err != nil {
		t.Fatal(err)
	}
	q, err := blocker.BuildFromRules(nil, nil, []string{"City"})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tracer := telemetry.NewTracer(reg)
	prov := telemetry.NewProvenance([2]int{1, 2})
	c, err := blocker.BlockScoped(q, a, b, nil, prov)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Metrics: reg, Trace: tracer, Provenance: prov}
	opt.Join.K = 100
	opt.Join.Workers = 1
	opt.Join.ProbeWorkers = 1
	opt.Verifier.N = 3
	opt.Verifier.Seed = 1
	dbg, err := core.New(a, b, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	gold := goldSet()
	for !dbg.Done() {
		pairs := dbg.Next()
		if len(pairs) == 0 {
			break
		}
		labels := make([]bool, len(pairs))
		for i, p := range pairs {
			labels[i] = gold.Contains(p.A, p.B)
		}
		if err := dbg.Feedback(labels); err != nil {
			t.Fatal(err)
		}
	}
	dbg.Finish()
	var buf bytes.Buffer
	if err := dbg.WriteCanonicalReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHTTPReportMatchesCLIReport is the transport-determinism contract:
// a scripted HTTP session must produce a canonical report byte-identical
// to a CLI session given the same tables, rules, seed, and join options.
// Workers and ProbeWorkers are pinned to 1 on both sides because the
// canonical report embeds JoinStats, whose reuse counters depend on the
// cross-config completion order at Workers > 1 (the ranked output never
// does — see internal/ssjoin's determinism suite).
func TestHTTPReportMatchesCLIReport(t *testing.T) {
	want := cliReport(t)
	_, ts := newTestServer(t, Options{})
	got := scriptSession(t, ts.URL, sessionBody)
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP canonical report differs from the CLI's:\n--- HTTP ---\n%s\n--- CLI ---\n%s", got, want)
	}
}

// TestHTTPReportReproducible replays the same scripted session twice on
// one server: same seed, same bytes.
func TestHTTPReportReproducible(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	first := scriptSession(t, ts.URL, sessionBody)
	second := scriptSession(t, ts.URL, sessionBody)
	if !bytes.Equal(first, second) {
		t.Errorf("two same-seed HTTP sessions produced different reports:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
