package serve

import (
	"bytes"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"matchcatcher/internal/telemetry"
)

func fetchFlightDump(t *testing.T, base string) *telemetry.FlightDump {
	t.Helper()
	code, body := do(t, "GET", base+"/debug/flightrecord", "")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecord status = %d: %s", code, body)
	}
	d, err := telemetry.ReadFlightDump(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFlightRecordEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	scriptSession(t, ts.URL, sessionBody)
	d := fetchFlightDump(t, ts.URL)

	if d.Reason != "http" {
		t.Errorf("reason = %q, want http", d.Reason)
	}
	if d.Build == nil || d.Time == 0 {
		t.Error("dump lacks build/time context")
	}
	if len(d.Runtime) == 0 {
		t.Error("dump lacks mc_runtime_* context")
	}
	var sawJoin, sawCreated, sawFinished bool
	for _, ev := range d.Events {
		switch {
		case ev.Kind == "request" && ev.Route == "join":
			sawJoin = true
			if ev.Status != http.StatusOK || ev.Session == "" || ev.TraceID == 0 {
				t.Errorf("join event incomplete: %+v", ev)
			}
			if ev.DurMicros <= 0 {
				t.Errorf("join event has no latency: %+v", ev)
			}
		case ev.Kind == "session" && ev.Route == "created":
			sawCreated = true
		case ev.Kind == "session" && ev.Route == "finished":
			sawFinished = true
		}
	}
	if !sawJoin || !sawCreated || !sawFinished {
		t.Errorf("dump missing events: join=%v created=%v finished=%v",
			sawJoin, sawCreated, sawFinished)
	}
	// A 404 must land in the ring with its error message.
	do(t, "GET", ts.URL+"/v1/sessions/nope", "")
	d = fetchFlightDump(t, ts.URL)
	found := false
	for _, ev := range d.Events {
		if ev.Kind == "request" && ev.Status == http.StatusNotFound && ev.Err != "" {
			found = true
		}
	}
	if !found {
		t.Error("404 request event with error message not retained")
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{FlightRecorderCap: -1})
	scriptSession(t, ts.URL, sessionBody)
	d := fetchFlightDump(t, ts.URL)
	if d.Recorded != 0 || d.Retained != 0 || len(d.Events) != 0 {
		t.Errorf("disabled recorder retained events: %+v", d)
	}
}

// TestObservabilityUpWhileDraining is the drain regression contract:
// only /readyz flips to 503 when the drain begins; /metrics, /healthz,
// and /debug/flightrecord keep answering 200 so operators can watch the
// drain they just started.
func TestObservabilityUpWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.BeginShutdown()
	if code, _ := do(t, "GET", ts.URL+"/readyz", ""); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", code)
	}
	for _, path := range []string{"/metrics", "/healthz", "/debug/flightrecord"} {
		if code, _ := do(t, "GET", ts.URL+path, ""); code != http.StatusOK {
			t.Errorf("%s while draining: %d, want 200", path, code)
		}
	}
}

func TestFlightDumpOnShutdown(t *testing.T) {
	dumpPath := filepath.Join(t.TempDir(), "flight.json")
	s, ts := newTestServer(t, Options{FlightDumpPath: dumpPath})
	scriptSession(t, ts.URL, sessionBody)

	s.BeginShutdown()
	d := readDumpFile(t, dumpPath)
	if d.Reason != "drain" {
		t.Errorf("drain dump reason = %q", d.Reason)
	}

	s.Close()
	d = readDumpFile(t, dumpPath)
	if d.Reason != "close" {
		t.Errorf("final dump reason = %q", d.Reason)
	}
	var sawJoin, sawShutdown bool
	for _, ev := range d.Events {
		if ev.Kind == "request" && ev.Route == "join" {
			sawJoin = true
		}
		if ev.Kind == "session" && ev.Route == "shutdown" {
			sawShutdown = true
		}
	}
	if !sawJoin {
		t.Error("final dump lacks the join request event")
	}
	// The finished session was still resident, so Close drains it and
	// records its shutdown transition.
	if !sawShutdown {
		t.Error("final dump lacks the shutdown transition")
	}
}

func readDumpFile(t *testing.T, path string) *telemetry.FlightDump {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := telemetry.ReadFlightDump(f)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSlowRequestWatchdog(t *testing.T) {
	reg := telemetry.New()
	_, ts := newTestServer(t, Options{Metrics: reg, SlowRequest: time.Nanosecond})
	scriptSession(t, ts.URL, sessionBody)
	d := fetchFlightDump(t, ts.URL)
	var slow *telemetry.FlightEvent
	for i := range d.Events {
		ev := &d.Events[i]
		if ev.Kind == "request" && ev.Route == "join" && ev.Slow {
			slow = ev
		}
	}
	if slow == nil {
		t.Fatal("join did not trip the 1ns watchdog")
	}
	if len(slow.Spans) == 0 {
		t.Fatal("slow event carries no span tree")
	}
	names := map[string]bool{}
	for _, sp := range slow.Spans {
		names[sp.Name] = true
	}
	if !names["serve.request"] {
		t.Errorf("slow span tree lacks serve.request: %v", names)
	}
	snap := reg.Snapshot()
	found := false
	for key := range snap.Counters {
		if strings.HasPrefix(key, "mc_serve_slow_requests_total") {
			found = true
		}
	}
	if !found {
		t.Error("mc_serve_slow_requests_total not incremented")
	}
}

func TestWatchdogDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{SlowRequest: -1})
	scriptSession(t, ts.URL, sessionBody)
	d := fetchFlightDump(t, ts.URL)
	for _, ev := range d.Events {
		if ev.Slow {
			t.Fatalf("watchdog disabled but event marked slow: %+v", ev)
		}
	}
}

// TestCanonicalRequestLog checks the one-line-per-request contract:
// every request emits exactly one "request" record at request end, the
// record carries the wide event's fields, and the old ad-hoc handler
// logs are gone.
func TestCanonicalRequestLog(t *testing.T) {
	var buf bytes.Buffer
	log := telemetry.NewLogger(&buf, slog.LevelDebug)
	_, ts := newTestServer(t, Options{Logger: log})

	id := createSession(t, ts.URL, sessionBody)
	do(t, "GET", ts.URL+"/v1/sessions/"+id, "")
	do(t, "GET", ts.URL+"/v1/sessions/nope", "")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var reqLines []string
	for _, line := range lines {
		if strings.Contains(line, "msg=request") {
			reqLines = append(reqLines, line)
		}
		if strings.Contains(line, "session created") {
			t.Errorf("ad-hoc handler log survived: %s", line)
		}
	}
	if len(reqLines) != 3 {
		t.Fatalf("%d canonical request lines, want 3:\n%s", len(reqLines), buf.String())
	}
	for _, line := range reqLines {
		for _, field := range []string{"route=", "method=", "status=", "dur_us="} {
			if !strings.Contains(line, field) {
				t.Errorf("request line lacks %s: %s", field, line)
			}
		}
	}
	if !strings.Contains(reqLines[0], "session=s") {
		t.Errorf("create line lacks the new session id: %s", reqLines[0])
	}
	if !strings.Contains(reqLines[1], "trace_id=") {
		t.Errorf("session route line lacks trace correlation: %s", reqLines[1])
	}
	if !strings.Contains(reqLines[2], "status=404") || !strings.Contains(reqLines[2], "error=") {
		t.Errorf("error line lacks status/error: %s", reqLines[2])
	}
}

// serveSeriesRE splits a snapshot series key into name and label body.
var serveSeriesRE = regexp.MustCompile(`^([a-z0-9_]+)(?:\{(.*)\})?$`)

// TestServeLabelCardinality is the registry-side cardinality guard:
// every label on every mc_serve_* series must come from the bounded
// constant sets below, so the metrics surface cannot grow unbounded
// series from user-controlled input (the static-side twin is mclint's
// metricname label check).
func TestServeLabelCardinality(t *testing.T) {
	reg := telemetry.New()
	s, ts := newTestServer(t, Options{Metrics: reg, MaxSessions: 1, SessionMemBudget: 64, IdleTimeout: time.Minute})
	// Exercise every labeled code path: success, 404, 413, 429, evictions.
	id := createSession(t, ts.URL, "")
	do(t, "GET", ts.URL+"/v1/sessions/nope", "")
	do(t, "PUT", ts.URL+"/v1/sessions/"+id+"/tables/a?name=A", tableACSV)
	sess, _ := s.acquire(id)
	do(t, "POST", ts.URL+"/v1/sessions", "")
	s.release(sess)
	createSession(t, ts.URL, "") // LRU-evicts id
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.lastUsed = time.Now().Add(-2 * time.Minute)
	}
	s.mu.Unlock()
	s.evictIdle()

	allowedKeys := map[string]bool{"route": true, "code": true, "reason": true}
	allowedRoutes := map[string]bool{}
	for _, r := range []string{
		"healthz", "readyz", "sessions_create", "sessions_list",
		"session_get", "session_delete", "tables_put", "blocker_set",
		"join", "candidates", "next", "labels", "finish", "report",
		"explain", "flightrecord",
	} {
		allowedRoutes[r] = true
	}
	allowedReasons := map[string]bool{"idle": true, "lru": true}
	codeRE := regexp.MustCompile(`^[1-5][0-9]{2}$`)

	snap := reg.Snapshot()
	keys := make([]string, 0, snap.NumSeries())
	for k := range snap.Counters {
		keys = append(keys, k)
	}
	for k := range snap.Gauges {
		keys = append(keys, k)
	}
	for k := range snap.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	checked := 0
	for _, key := range keys {
		if !strings.HasPrefix(key, "mc_serve_") {
			continue
		}
		checked++
		m := serveSeriesRE.FindStringSubmatch(key)
		if m == nil {
			t.Errorf("unparseable series key %q", key)
			continue
		}
		if m[2] == "" {
			continue // unlabeled series are trivially bounded
		}
		for _, pair := range strings.Split(m[2], ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				t.Errorf("series %q: bad label %q", key, pair)
				continue
			}
			lk, lv := kv[0], strings.Trim(kv[1], `"`)
			if !allowedKeys[lk] {
				t.Errorf("series %q: label key %q outside the bounded set", key, lk)
			}
			switch lk {
			case "route":
				if !allowedRoutes[lv] {
					t.Errorf("series %q: route %q outside the registered route set", key, lv)
				}
			case "code":
				if !codeRE.MatchString(lv) {
					t.Errorf("series %q: code %q is not a status code", key, lv)
				}
			case "reason":
				if !allowedReasons[lv] {
					t.Errorf("series %q: reason %q outside the eviction reason set", key, lv)
				}
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d mc_serve_* series exercised; the guard is vacuous", checked)
	}
}

// TestInflightSectionShowsRunningRequest pins the dump's in-flight
// evidence: a request still executing when the dump is taken appears in
// the Inflight section with its session identity.
func TestInflightSectionShowsRunningRequest(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL, sessionBody)

	sess, ok := s.acquire(id)
	if !ok {
		t.Fatal("acquire failed")
	}
	defer s.release(sess)
	// Simulate the envelope's in-flight registration for a long join.
	tok := s.inflightReqs.add(telemetry.FlightEvent{
		Kind: "request", Route: "join", Method: "POST", Session: id,
	})
	defer s.inflightReqs.remove(tok)

	d := fetchFlightDump(t, ts.URL)
	found := false
	for _, ev := range d.Inflight {
		if ev.Route == "join" && ev.Session == id && ev.Inflight {
			found = true
		}
	}
	if !found {
		t.Fatalf("in-flight join missing from dump: %+v", d.Inflight)
	}
}

func TestTransitionEventsOnEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxSessions: 1, IdleTimeout: time.Minute})
	id := createSession(t, ts.URL, "")
	createSession(t, ts.URL, "") // LRU-evicts id
	_ = id
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.lastUsed = time.Now().Add(-2 * time.Minute)
	}
	s.mu.Unlock()
	s.evictIdle()

	d := fetchFlightDump(t, ts.URL)
	want := map[string]bool{"evicted_lru": false, "evicted_idle": false, "created": false}
	for _, ev := range d.Events {
		if ev.Kind == "session" {
			if _, ok := want[ev.Route]; ok {
				want[ev.Route] = true
			}
			if ev.Session == "" {
				t.Errorf("session transition without session id: %+v", ev)
			}
		}
	}
	for _, tr := range []string{"evicted_lru", "evicted_idle", "created"} {
		if !want[tr] {
			t.Errorf("transition %q not recorded", tr)
		}
	}
}
