// Package serve hosts many concurrent MatchCatcher debugging sessions
// behind an HTTP/JSON API — the long-lived, multi-tenant counterpart to
// mcdebug's one-shot CLI loop.
//
// Each session owns the state one mcdebug invocation owns: two tables, a
// blocker, the blocker's candidate-set output C, and (after the join) a
// core.Debugger driving the paper's interactive verification loop. The
// server adds the production envelope around that per-session core: a
// bounded session table with LRU idle eviction, per-session upload
// budgets with 413/429 backpressure, request deadlines threaded into the
// joins as context cancellation, graceful drain on shutdown, and
// /healthz + /readyz probes.
//
// Isolation model: every session gets a private telemetry registry,
// tracer (rooted at a serve.session span that all request spans hang
// under), and provenance recorder, so tenants never share mutable
// telemetry state; the one shared surface — the blocker package's
// process-wide trace/provenance hooks — is serialized by
// blocker.BlockScoped. Server-level mc_serve_* metrics live on a
// separate server registry. Determinism survives the transport: a
// scripted HTTP session produces a canonical report byte-identical to
// the CLI's for the same tables, rules, seed, and join options.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"matchcatcher/internal/telemetry"
)

// Options configures the server.
type Options struct {
	// MaxSessions bounds the live session table (default 16). Creating a
	// session at the bound evicts the least-recently-used idle session;
	// if every session has a request in flight the create is rejected
	// with 429 (admission control, not queueing: the client owns retry).
	MaxSessions int
	// SessionMemBudget caps the bytes of table CSV a session may upload
	// (default 64 MiB). Uploads that would exceed it get 413.
	SessionMemBudget int64
	// IdleTimeout evicts sessions with no request activity for this long
	// (default 15m; <= 0 disables idle eviction, LRU eviction at
	// MaxSessions still applies).
	IdleTimeout time.Duration
	// RequestTimeout is the per-request deadline for /v1 routes (default
	// 60s). It is threaded into the join as context cancellation, so a
	// deadline or client disconnect aborts an in-flight join promptly.
	RequestTimeout time.Duration
	// LedgerPath, when set, appends one runlog record per completed
	// session (finished, deleted, evicted, or drained at shutdown).
	LedgerPath string
	// Metrics receives the server's mc_serve_* series (nil selects
	// telemetry.Default()). Per-session pipeline telemetry lives on each
	// session's private registry, not here.
	Metrics *telemetry.Registry
	// Logger receives request and lifecycle logs (nil discards them).
	Logger *slog.Logger
	// FlightRecorderCap sizes the flight ring of recent wide events
	// (0 selects telemetry.DefaultFlightCapacity; < 0 disables the
	// recorder entirely — the canonical log lines still flow).
	FlightRecorderCap int
	// SlowRequest is the watchdog threshold: requests slower than this
	// enter the flight ring with their full span tree attached (0
	// selects 1s; < 0 disables the watchdog).
	SlowRequest time.Duration
	// FlightDumpPath, when set, receives an automatic flight-record dump
	// when shutdown drain begins and again after Close, so the evidence
	// survives the process.
	FlightDumpPath string
	// ProgressInterval is the frame cadence of the SSE progress stream on
	// GET /v1/sessions/{id}/progress (default 250ms). Frames are built
	// from the join tracker's lock-free snapshot, so a short interval
	// costs the server, not the join.
	ProgressInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.SessionMemBudget <= 0 {
		o.SessionMemBudget = 64 << 20
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 15 * time.Minute
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.SlowRequest == 0 {
		o.SlowRequest = time.Second
	}
	if o.ProgressInterval <= 0 {
		o.ProgressInterval = 250 * time.Millisecond
	}
	return o
}

// Server hosts debugging sessions. Create one with New, mount Handler on
// an http.Server, and tear down with BeginShutdown (stop admitting, flip
// /readyz) → http.Server.Shutdown (drain in-flight requests, joins
// included) → Close (finish surviving sessions and flush their ledger
// records).
type Server struct {
	opt Options
	reg *telemetry.Registry
	log *slog.Logger
	mux *http.ServeMux

	// flight is the black-box recorder of recent wide events (nil when
	// disabled; every call site is nil-safe). inflightReqs tracks
	// requests currently executing for the dump's in-flight section.
	flight       *telemetry.FlightRecorder
	inflightReqs inflightTable

	mu       sync.Mutex //mc:lockrank 1 — guards sessions, nextID, draining, per-session lastUsed/inflight
	sessions map[string]*session
	nextID   int64
	draining bool

	janitorStop chan struct{}
	janitorDone chan struct{}
	stopOnce    sync.Once
}

// New builds a Server and starts its idle-eviction janitor.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:         opt,
		reg:         telemetry.Or(opt.Metrics),
		log:         telemetry.LoggerOr(opt.Logger),
		mux:         http.NewServeMux(),
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if opt.FlightRecorderCap >= 0 {
		s.flight = telemetry.NewFlightRecorder(opt.FlightRecorderCap)
	}
	s.reg.SetHelp("mc_serve_sessions_live", "Debugging sessions currently hosted.")
	s.reg.SetHelp("mc_serve_sessions_created_total", "Sessions created since process start.")
	s.reg.SetHelp("mc_serve_sessions_evicted_total", "Sessions evicted, by reason (idle, lru).")
	s.reg.SetHelp("mc_serve_admission_rejected_total", "Session creations rejected with 429 (table full, no idle session to evict).")
	s.reg.SetHelp("mc_serve_budget_rejected_total", "Table uploads rejected with 413 (per-session memory budget).")
	s.reg.SetHelp("mc_serve_requests_total", "HTTP requests served, by route and status code.")
	s.reg.SetHelp("mc_serve_request_seconds", "HTTP request latency, by route and status code.")
	s.reg.SetHelp("mc_serve_slow_requests_total", "Requests that tripped the slow-request watchdog, by route.")
	// Instantiate the gauge so /metrics exposes a zero before the first
	// session arrives; SetHelp alone does not create the series.
	s.reg.Gauge("mc_serve_sessions_live").Set(0)
	s.routes()
	go s.janitor()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the API surface. Route names (the metric/log labels) are
// passed explicitly because http.Request.Pattern postdates this module's
// language version.
func (s *Server) routes() {
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	s.route("POST /v1/sessions", "sessions_create", s.handleCreateSession)
	s.route("GET /v1/sessions", "sessions_list", s.handleListSessions)
	s.route("GET /v1/sessions/{id}", "session_get", s.sessionRoute("session_get", s.handleGetSession))
	s.route("DELETE /v1/sessions/{id}", "session_delete", s.sessionRoute("session_delete", s.handleDeleteSession))
	s.route("PUT /v1/sessions/{id}/tables/{side}", "tables_put", s.sessionRoute("tables_put", s.handleUploadTable))
	s.route("POST /v1/sessions/{id}/blocker", "blocker_set", s.sessionRoute("blocker_set", s.handleSetBlocker))
	s.route("POST /v1/sessions/{id}/join", "join", s.sessionRoute("join", s.handleJoin))
	s.route("GET /v1/sessions/{id}/candidates", "candidates", s.sessionRoute("candidates", s.handleCandidates))
	s.route("POST /v1/sessions/{id}/next", "next", s.sessionRoute("next", s.handleNext))
	s.route("POST /v1/sessions/{id}/labels", "labels", s.sessionRoute("labels", s.handleLabels))
	s.route("POST /v1/sessions/{id}/finish", "finish", s.sessionRoute("finish", s.handleFinish))
	s.route("GET /v1/sessions/{id}/progress", "progress", s.sessionRoute("progress", s.handleProgress))
	s.route("GET /v1/sessions/{id}/report", "report", s.sessionRoute("report", s.handleReport))
	s.route("GET /v1/sessions/{id}/explain", "explain", s.sessionRoute("explain", s.handleExplain))
	s.route("GET /debug/flightrecord", "flightrecord", s.handleFlightRecord)
	s.mux.Handle("GET /metrics", s.reg.Handler())
}

// statusWriter captures the response code and body size for the
// request's wide event, and carries the event itself so handlers can
// annotate it (error message, session id) without extra plumbing.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	ev    *telemetry.FlightEvent
	token uint64 // inflightReqs token, 0 when the request is untracked
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so the SSE progress stream
// can push frames through the envelope mid-request.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route registers a handler wrapped with the request envelope: a
// deadline on /v1 routes (threaded into handlers via the request
// context, which the join converts into cancellation), one wide event
// per request feeding the flight ring, the canonical log line, and the
// mc_serve_requests_total / mc_serve_request_seconds series.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ev := &telemetry.FlightEvent{
			Kind:   "request",
			Route:  name,
			Method: r.Method,
			Time:   start.UnixNano(),
		}
		if r.ContentLength > 0 {
			ev.BytesIn = r.ContentLength
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK, ev: ev}
		if s.opt.RequestTimeout > 0 && strings.HasPrefix(r.URL.Path, "/v1/") {
			ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sw, r)
		ev.Status = sw.code
		ev.BytesOut = sw.bytes
		ev.DurMicros = time.Since(start).Microseconds()
		code := strconv.Itoa(sw.code)
		s.reg.Counter("mc_serve_requests_total",
			telemetry.L("route", name), telemetry.L("code", code)).Inc()
		s.reg.Histogram("mc_serve_request_seconds",
			telemetry.L("route", name), telemetry.L("code", code)).
			Observe(time.Since(start).Seconds())
		if ev.Slow {
			s.reg.Counter("mc_serve_slow_requests_total", telemetry.L("route", name)).Inc()
		}
		s.flight.Record(*ev)
		s.logRequest(ev)
	})
}

// sessionRoute resolves the {id} path value, pins the session against
// eviction for the request's duration, opens a serve.request trace span
// under the session's serve.session root, annotates the request's wide
// event with the session and trace identity, and runs the slow-request
// watchdog: requests over Options.SlowRequest get their span subtree
// copied into the event so the flight ring retains the full tree even
// after the tracer's retention cap drops it.
func (s *Server) sessionRoute(name string, h func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.PathValue("id")
		sess, ok := s.acquire(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no such session %q", id))
			return
		}
		defer s.release(sess)
		sp := sess.root.Child("serve.request",
			telemetry.L("route", name), telemetry.L("method", r.Method))
		sw, _ := w.(*statusWriter)
		if sw != nil && sw.ev != nil {
			sw.ev.Session = id
			sw.ev.TraceID = sp.TraceID()
			sw.ev.SpanID = sp.ID()
			// Only session routes enter the in-flight table: they are the
			// requests that can run long enough (joins) for a mid-request
			// dump to matter, and keeping the table off the sub-millisecond
			// envelope routes keeps recorder overhead inside the budget.
			// The copy is registered fully annotated, so dump readers never
			// see a half-identified request.
			if s.flight != nil {
				sw.token = s.inflightReqs.add(*sw.ev)
				defer s.inflightReqs.remove(sw.token)
			}
		}
		ctx := telemetry.ContextWithSpan(r.Context(), sp)
		h(w, r.WithContext(ctx), sess)
		code := http.StatusOK
		if sw != nil {
			code = sw.code
		}
		sp.SetAttrInt("status", int64(code))
		sp.End()
		if sw != nil && sw.ev != nil {
			slow := s.opt.SlowRequest > 0 && time.Since(start) >= s.opt.SlowRequest
			if slow {
				sw.ev.Slow = true
			}
			if slow || code >= http.StatusInternalServerError {
				sw.ev.Spans = sess.tracer.ExportSubtree(sp.ID())
			}
		}
	}
}

// acquire looks up a session, bumps its in-flight count (pinning it
// against eviction) and its recency.
func (s *Server) acquire(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	sess.inflight++
	sess.lastUsed = time.Now()
	return sess, true
}

func (s *Server) release(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess.inflight--
	sess.lastUsed = time.Now()
}

// BeginShutdown stops admitting sessions and flips /readyz to 503, so
// load balancers drain the instance while in-flight requests (and the
// subsequent http.Server.Shutdown) complete. If FlightDumpPath is set,
// the flight record is dumped to disk as the drain begins — capturing
// every request still in flight (the join a SIGTERM interrupted) while
// the evidence is still fresh.
func (s *Server) BeginShutdown() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.dumpFlightToDisk("drain")
	}
}

// Close finishes every surviving session (ending trace spans and
// appending ledger records) and stops the janitor. Call it after
// http.Server.Shutdown has drained in-flight requests.
func (s *Server) Close() {
	s.BeginShutdown()
	s.stopOnce.Do(func() { close(s.janitorStop) })
	<-s.janitorDone
	s.mu.Lock()
	victims := make([]*session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		victims = append(victims, sess)
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	// Sessions close in id order so the drain's ledger records land in a
	// deterministic order (and mclint's mapiter analyzer stays quiet).
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, sess := range victims {
		s.closeSession(sess, "shutdown")
	}
	s.reg.Gauge("mc_serve_sessions_live").Set(0)
	// Re-dump now that the drain completed: the file on disk ends up
	// holding the whole shutdown story, completed requests included.
	s.dumpFlightToDisk("close")
}

// janitor evicts idle sessions on a timer derived from IdleTimeout.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.opt.IdleTimeout <= 0 {
		<-s.janitorStop
		return
	}
	interval := s.opt.IdleTimeout / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.evictIdle()
		}
	}
}

func (s *Server) evictIdle() {
	cutoff := time.Now().Add(-s.opt.IdleTimeout)
	s.mu.Lock()
	var victims []*session
	for id, sess := range s.sessions {
		if sess.inflight == 0 && sess.lastUsed.Before(cutoff) {
			victims = append(victims, sess)
			delete(s.sessions, id)
		}
	}
	live := len(s.sessions)
	s.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, sess := range victims {
		s.closeSession(sess, "idle")
		s.reg.Counter("mc_serve_sessions_evicted_total", telemetry.L("reason", "idle")).Inc()
	}
	if len(victims) > 0 {
		s.reg.Gauge("mc_serve_sessions_live").Set(float64(live))
	}
}

// lruIdleLocked returns the least-recently-used session with no request
// in flight, or nil if every session is busy. Caller holds s.mu.
func (s *Server) lruIdleLocked() *session {
	var victim *session
	for _, sess := range s.sessions {
		if sess.inflight != 0 {
			continue
		}
		if victim == nil || sess.lastUsed.Before(victim.lastUsed) {
			victim = sess
		}
	}
	return victim
}
