package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/telemetry"
)

// The paper's Figure 1 running example, shared by the lifecycle,
// determinism, and stress tests.
const (
	tableACSV = "Name,City,Age\n" +
		"Dave Smith,Altanta,18\n" +
		"Daniel Smith,LA,18\n" +
		"Joe Welson,New York,25\n" +
		"Charles Williams,Chicago,45\n" +
		"Charlie William,Atlanta,28\n"
	tableBCSV = "Name,City,Age\n" +
		"David Smith,Atlanta,18\n" +
		"Joe Wilson,NY,25\n" +
		"Daniel W. Smith,LA,30\n" +
		"Charles Williams,Chicago,45\n"
)

func goldSet() *blocker.PairSet {
	gold := blocker.NewPairSet()
	gold.Add(0, 0)
	gold.Add(1, 2)
	gold.Add(2, 1)
	gold.Add(3, 3)
	return gold
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Metrics == nil {
		opt.Metrics = telemetry.New()
	}
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// do issues a request and returns the status code and body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// mustJSON asserts the status code and decodes the JSON body into v.
func mustJSON(t *testing.T, wantCode, code int, body []byte, v any) {
	t.Helper()
	if code != wantCode {
		t.Fatalf("status = %d, want %d; body: %s", code, wantCode, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("bad JSON body: %v\n%s", err, body)
		}
	}
}

// createSession posts a session and returns its id.
func createSession(t *testing.T, base, body string) string {
	t.Helper()
	code, data := do(t, "POST", base+"/v1/sessions", body)
	var info sessionInfo
	mustJSON(t, http.StatusCreated, code, data, &info)
	if info.ID == "" || info.State != "created" {
		t.Fatalf("create response = %+v", info)
	}
	return info.ID
}

// scriptSession drives one full gold-labeled debugging session over HTTP
// — the scripted equivalent of a gold-driven mcdebug run — and returns
// the canonical report bytes.
func scriptSession(t *testing.T, base, createBody string) []byte {
	t.Helper()
	id := createSession(t, base, createBody)
	su := base + "/v1/sessions/" + id
	gold := goldSet()

	code, data := do(t, "PUT", su+"/tables/a?name=A", tableACSV)
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "PUT", su+"/tables/b?name=B", tableBCSV)
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`)
	var bresp struct {
		Blocker string `json:"blocker"`
		CSize   int    `json:"c_size"`
	}
	mustJSON(t, http.StatusOK, code, data, &bresp)
	if bresp.CSize == 0 {
		t.Fatalf("blocker produced an empty candidate set: %+v", bresp)
	}
	code, data = do(t, "POST", su+"/join", "")
	var jresp struct {
		ESize   int `json:"e_size"`
		Configs int `json:"configs"`
	}
	mustJSON(t, http.StatusOK, code, data, &jresp)
	if jresp.ESize == 0 || jresp.Configs == 0 {
		t.Fatalf("join response = %+v", jresp)
	}

	for i := 0; i < 50; i++ {
		code, data = do(t, "POST", su+"/next", "")
		var next struct {
			Pairs []shownPair `json:"pairs"`
			Done  bool        `json:"done"`
		}
		mustJSON(t, http.StatusOK, code, data, &next)
		if next.Done {
			break
		}
		labels := make([]string, len(next.Pairs))
		for j, p := range next.Pairs {
			labels[j] = fmt.Sprintf("%v", gold.Contains(p.A, p.B))
		}
		code, data = do(t, "POST", su+"/labels",
			fmt.Sprintf(`{"labels":[%s]}`, strings.Join(labels, ",")))
		mustJSON(t, http.StatusOK, code, data, nil)
	}

	code, data = do(t, "POST", su+"/finish", "")
	mustJSON(t, http.StatusOK, code, data, nil)
	code, data = do(t, "GET", su+"/report", "")
	if code != http.StatusOK {
		t.Fatalf("report status = %d: %s", code, data)
	}
	return data
}

const sessionBody = `{"seed":1,"k":100,"n":3,"workers":1,"probe_workers":1,"watch":[[1,2]]}`

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	report := scriptSession(t, ts.URL, sessionBody)
	var rep struct {
		TableA     string `json:"table_a"`
		Iterations int    `json:"iterations"`
		Matches    []any  `json:"matches"`
		Telemetry  any    `json:"telemetry"`
		Provenance []any  `json:"provenance"`
	}
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.TableA != "A" || rep.Iterations == 0 || len(rep.Matches) == 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Telemetry != nil {
		t.Error("canonical report must not carry a telemetry snapshot")
	}
	if len(rep.Provenance) == 0 {
		t.Error("report lacks provenance for the watched pair")
	}
}

func TestSessionErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code, _ := do(t, "GET", ts.URL+"/v1/sessions/nope", ""); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", code)
	}
	id := createSession(t, ts.URL, "")
	su := ts.URL + "/v1/sessions/" + id

	// Out-of-order and malformed operations.
	if code, _ := do(t, "POST", su+"/join", ""); code != http.StatusConflict {
		t.Errorf("join before blocker: status %d, want 409", code)
	}
	if code, _ := do(t, "POST", su+"/next", ""); code != http.StatusConflict {
		t.Errorf("next before join: status %d, want 409", code)
	}
	if code, _ := do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`); code != http.StatusConflict {
		t.Errorf("blocker before tables: status %d, want 409", code)
	}
	if code, _ := do(t, "PUT", su+"/tables/c", "x,y\n"); code != http.StatusNotFound {
		t.Errorf("bad table side: status %d, want 404", code)
	}
	if code, _ := do(t, "PUT", su+"/tables/a", ""); code != http.StatusBadRequest {
		t.Errorf("empty CSV: status %d, want 400", code)
	}
	do(t, "PUT", su+"/tables/a?name=A", tableACSV)
	do(t, "PUT", su+"/tables/b?name=B", tableBCSV)
	if code, _ := do(t, "POST", su+"/blocker", `{"drops":["((("]}`); code != http.StatusBadRequest {
		t.Errorf("unparseable rule: status %d, want 400", code)
	}
	if code, _ := do(t, "POST", su+"/blocker", `{"bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`)
	do(t, "POST", su+"/join", "")
	if code, _ := do(t, "POST", su+"/join", ""); code != http.StatusConflict {
		t.Errorf("double join: status %d, want 409", code)
	}
	if code, _ := do(t, "PUT", su+"/tables/a?name=A", tableACSV); code != http.StatusConflict {
		t.Errorf("upload after join: status %d, want 409", code)
	}
	if code, _ := do(t, "GET", su+"/explain", ""); code != http.StatusBadRequest {
		t.Errorf("explain without rows: status %d, want 400", code)
	}
	if code, body := do(t, "GET", su+"/explain?a=1&b=2", ""); code != http.StatusOK ||
		!bytes.Contains(body, []byte("pair (1, 2)")) {
		t.Errorf("explain: status %d, body %s", code, body)
	}
	if code, _ := do(t, "GET", su+"/candidates?offset=-1", ""); code != http.StatusBadRequest {
		t.Errorf("bad paging: status %d, want 400", code)
	}
	var cand struct {
		Total int        `json:"total"`
		Pairs []pairJSON `json:"pairs"`
	}
	code, data := do(t, "GET", su+"/candidates?offset=0&limit=5", "")
	mustJSON(t, http.StatusOK, code, data, &cand)
	if cand.Total == 0 || len(cand.Pairs) == 0 || len(cand.Pairs) > 5 {
		t.Errorf("candidates page = %+v", cand)
	}
	if code, _ := do(t, "DELETE", su, ""); code != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", code)
	}
	if code, _ := do(t, "GET", su, ""); code != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", code)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxSessions: 1})
	id := createSession(t, ts.URL, "")

	// Pin the only session as if a request were in flight: creation must
	// refuse with 429 rather than evict a busy tenant.
	sess, ok := s.acquire(id)
	if !ok {
		t.Fatal("acquire failed")
	}
	code, _ := do(t, "POST", ts.URL+"/v1/sessions", "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("create at capacity (busy): status %d, want 429", code)
	}
	s.release(sess)

	// Idle again: creation evicts the LRU session instead.
	id2 := createSession(t, ts.URL, "")
	if code, _ := do(t, "GET", ts.URL+"/v1/sessions/"+id, ""); code != http.StatusNotFound {
		t.Errorf("evicted session still reachable: status %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/sessions/"+id2, ""); code != http.StatusOK {
		t.Errorf("new session unreachable: status %d", code)
	}
}

func TestUploadBudget(t *testing.T) {
	_, ts := newTestServer(t, Options{SessionMemBudget: 64})
	id := createSession(t, ts.URL, "")
	su := ts.URL + "/v1/sessions/" + id
	code, _ := do(t, "PUT", su+"/tables/a?name=A", tableACSV) // > 64 bytes
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget upload: status %d, want 413", code)
	}
	if code, _ := do(t, "PUT", su+"/tables/a?name=A", "x\n1\n"); code != http.StatusOK {
		t.Errorf("small upload refused: status %d", code)
	}
}

func TestReadyzFlipsWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if code, _ := do(t, "GET", ts.URL+"/readyz", ""); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	s.BeginShutdown()
	if code, _ := do(t, "GET", ts.URL+"/readyz", ""); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/sessions", ""); code != http.StatusServiceUnavailable {
		t.Errorf("create while draining: %d, want 503", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200", code)
	}
}

func TestIdleEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{IdleTimeout: time.Minute})
	id := createSession(t, ts.URL, "")
	s.mu.Lock()
	s.sessions[id].lastUsed = time.Now().Add(-2 * time.Minute)
	s.mu.Unlock()
	s.evictIdle()
	if code, _ := do(t, "GET", ts.URL+"/v1/sessions/"+id, ""); code != http.StatusNotFound {
		t.Errorf("idle session survived eviction: status %d", code)
	}
}

// TestLedgerOneRecordPerSession checks the runlog contract: exactly one
// record per completed session, whether the client finished it
// explicitly or the server closed it at shutdown.
func TestLedgerOneRecordPerSession(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "runs.jsonl")
	s, ts := newTestServer(t, Options{LedgerPath: ledger})

	// Session 1: explicit finish — the shutdown drain must not write a
	// second record for it.
	scriptSession(t, ts.URL, sessionBody)
	// Session 2: joined but never finished; the shutdown drain records it.
	id2 := createSession(t, ts.URL, sessionBody)
	su := ts.URL + "/v1/sessions/" + id2
	do(t, "PUT", su+"/tables/a?name=A", tableACSV)
	do(t, "PUT", su+"/tables/b?name=B", tableBCSV)
	do(t, "POST", su+"/blocker", `{"attr_equals":["City"]}`)
	do(t, "POST", su+"/join", "")
	// Session 3: never joined — no record at all.
	createSession(t, ts.URL, "")

	s.Close()
	recs, err := runlog.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ledger has %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Tool != "mcserve" || rec.Exp != "session" {
			t.Errorf("record = %s/%s", rec.Tool, rec.Exp)
		}
		if rec.Telemetry == nil {
			t.Error("record lacks the session telemetry snapshot")
		}
		if rec.Metrics["mcserve:wall_seconds"] <= 0 {
			t.Errorf("record metrics = %v", rec.Metrics)
		}
	}
	if recs[0].Metrics["mcserve:iterations"] < 1 {
		t.Errorf("finished session recorded %v iterations", recs[0].Metrics["mcserve:iterations"])
	}
}

func TestServerMetrics(t *testing.T) {
	reg := telemetry.New()
	_, ts := newTestServer(t, Options{Metrics: reg})
	scriptSession(t, ts.URL, sessionBody)
	code, body := do(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"mc_serve_sessions_live",
		"mc_serve_sessions_created_total",
		`mc_serve_requests_total{code="200",route="join"}`,
		`mc_serve_request_seconds`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
	// Session telemetry is private: pipeline series must NOT leak onto
	// the server registry.
	if bytes.Contains(body, []byte("mc_ssjoin_")) {
		t.Error("per-session pipeline series leaked onto the server registry")
	}
}
