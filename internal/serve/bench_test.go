package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"matchcatcher/internal/telemetry"
)

// Request-path overhead benchmarks: the same envelope with the flight
// recorder on (default) and off (FlightRecorderCap < 0). The pair feeds
// BENCH_serve_overhead.json — the mcperf gate's check that wide-event
// recording stays inside the <5% overhead budget. /healthz is the
// measured route because it is all envelope and no handler: the
// worst-case ratio for observability overhead.

func benchServer(b *testing.B, opt Options) *Server {
	b.Helper()
	opt.Metrics = telemetry.New()
	s := New(opt)
	b.Cleanup(s.Close)
	return s
}

func benchRequests(b *testing.B, s *Server, method, path string) {
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(method, path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d", w.Code)
		}
	}
}

func BenchmarkServeRequestRecorderOn(b *testing.B) {
	s := benchServer(b, Options{})
	benchRequests(b, s, "GET", "/healthz")
}

func BenchmarkServeRequestRecorderOff(b *testing.B) {
	s := benchServer(b, Options{FlightRecorderCap: -1})
	benchRequests(b, s, "GET", "/healthz")
}

// BenchmarkServeSessionRequestRecorderOn measures the session-route
// envelope (acquire/release, span open/close, wide-event annotation) on
// a resident session — the path real API traffic takes.
func BenchmarkServeSessionRequestRecorderOn(b *testing.B) {
	s := benchServer(b, Options{})
	sess, err := s.admit(sessionConfig{Seed: 1, K: 10, N: 3})
	if err != nil {
		b.Fatal(err)
	}
	benchRequests(b, s, "GET", "/v1/sessions/"+sess.id)
}

func BenchmarkServeSessionRequestRecorderOff(b *testing.B) {
	s := benchServer(b, Options{FlightRecorderCap: -1})
	sess, err := s.admit(sessionConfig{Seed: 1, K: 10, N: 3})
	if err != nil {
		b.Fatal(err)
	}
	benchRequests(b, s, "GET", "/v1/sessions/"+sess.id)
}
