package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"matchcatcher/internal/blocker"
	"matchcatcher/internal/core"
	"matchcatcher/internal/runlog"
	"matchcatcher/internal/ssjoin"
	"matchcatcher/internal/table"
	"matchcatcher/internal/telemetry"
)

// Sentinel errors the admission path maps to status codes.
var (
	errDraining = errors.New("server is draining")
	errBusy     = errors.New("session table full and every session is busy")
)

// The wire types. Every request body is JSON except table uploads,
// whose body is the raw CSV.

type createSessionRequest struct {
	Seed         int64    `json:"seed"`
	K            int      `json:"k"`
	N            int      `json:"n"`
	Workers      int      `json:"workers"`
	ProbeWorkers int      `json:"probe_workers"`
	Watch        [][2]int `json:"watch"`
}

type sessionInfo struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	Seed         int64  `json:"seed"`
	K            int    `json:"k"`
	N            int    `json:"n"`
	MemUsedBytes int64  `json:"mem_used_bytes"`
	Iterations   int    `json:"iterations"`
	MatchesFound int    `json:"matches_found"`
	Done         bool   `json:"done"`
}

type blockerRequest struct {
	Drops      []string `json:"drops"`
	Keeps      []string `json:"keeps"`
	AttrEquals []string `json:"attr_equals"`
}

type pairJSON struct {
	A int `json:"a"`
	B int `json:"b"`
}

type shownPair struct {
	A       int      `json:"a"`
	B       int      `json:"b"`
	ValuesA []string `json:"values_a"`
	ValuesB []string `json:"values_b"`
}

type labelsRequest struct {
	Labels []bool `json:"labels"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError answers an error and annotates the request's wide event
// with it, so the canonical log line and the flight record carry the
// exact message the client saw.
func writeError(w http.ResponseWriter, code int, msg string) {
	if ev := eventOf(w); ev != nil {
		ev.Err = msg
	}
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg := sessionConfig{
		Seed: req.Seed, K: req.K, N: req.N,
		Workers: req.Workers, ProbeWorkers: req.ProbeWorkers,
		Watch: req.Watch,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.K == 0 {
		cfg.K = 1000
	}
	if cfg.N == 0 {
		cfg.N = 20
	}
	for _, p := range cfg.Watch {
		if p[0] < 0 || p[1] < 0 {
			writeError(w, http.StatusBadRequest, "watch pairs must be non-negative row ids")
			return
		}
	}
	sess, err := s.admit(cfg)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	// The create's canonical log line carries the new session id; the
	// "created" transition event (recorded by admit) carries the rest.
	if ev := eventOf(w); ev != nil {
		ev.Session = sess.id
	}
	writeJSON(w, http.StatusCreated, s.infoFor(sess))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	infos := make([]sessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = s.infoFor(sess)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) infoFor(sess *session) sessionInfo {
	info := sessionInfo{
		ID: sess.id, State: sess.state(),
		Seed: sess.cfg.Seed, K: sess.cfg.K, N: sess.cfg.N,
	}
	sess.mu.Lock()
	info.MemUsedBytes = sess.memUsed
	dbg := sess.dbg
	sess.mu.Unlock()
	if dbg != nil {
		info.Iterations = dbg.Iterations()
		info.MatchesFound = len(dbg.Matches())
		info.Done = dbg.Done()
	}
	return info
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, s.infoFor(sess))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request, sess *session) {
	s.remove(sess.id)
	s.closeSession(sess, "deleted")
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUploadTable(w http.ResponseWriter, r *http.Request, sess *session) {
	side := r.PathValue("side")
	if side != "a" && side != "b" {
		writeError(w, http.StatusNotFound, "table side must be \"a\" or \"b\"")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = side
	}
	sess.mu.Lock()
	joined := sess.dbg != nil || sess.joining
	remaining := s.opt.SessionMemBudget - sess.memUsed
	sess.mu.Unlock()
	if joined {
		writeError(w, http.StatusConflict, "session already joined; tables are frozen")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, remaining))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.reg.Counter("mc_serve_budget_rejected_total").Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds the session's remaining memory budget (%d bytes left)", remaining))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	t, err := table.ReadCSV(name, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.mu.Lock()
	if sess.dbg != nil || sess.joining {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "session already joined; tables are frozen")
		return
	}
	if side == "a" {
		sess.a = t
	} else {
		sess.b = t
	}
	sess.memUsed += int64(len(body))
	if sess.st == stateCreated || sess.st == stateTables {
		// Re-uploads while blocked stay blocked; the blocker result is
		// replaced on the next /blocker call, not invalidated here.
		_ = sess.advanceLocked(stateTables)
	}
	sess.mu.Unlock()
	telemetry.SpanFromContext(r.Context()).SetAttrInt("bytes", int64(len(body)))
	writeJSON(w, http.StatusOK, map[string]any{
		"table": t.Name(), "rows": t.NumRows(), "attrs": t.Attrs(),
	})
}

func (s *Server) handleSetBlocker(w http.ResponseWriter, r *http.Request, sess *session) {
	var req blockerRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.mu.Lock()
	a, b := sess.a, sess.b
	joined := sess.dbg != nil || sess.joining
	sess.mu.Unlock()
	if joined {
		writeError(w, http.StatusConflict, "session already joined; the blocker is frozen")
		return
	}
	if a == nil || b == nil {
		writeError(w, http.StatusConflict, "upload both tables before setting a blocker")
		return
	}
	q, err := blocker.BuildFromRules(req.Drops, req.Keeps, req.AttrEquals)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The blocker package's trace/provenance hooks are process-wide;
	// BlockScoped serializes concurrent sessions over them.
	bsp := telemetry.SpanFromContext(r.Context()).Child("blocker.run", telemetry.L("blocker", q.Name()))
	c, err := blocker.BlockScoped(q, a, b, bsp, sess.prov)
	bsp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess.mu.Lock()
	if sess.dbg != nil || sess.joining {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "session already joined; the blocker is frozen")
		return
	}
	sess.q, sess.c = q, c
	// Guards above ensure both tables exist, so st >= stateTables and
	// the advance cannot fail (blocked re-enters itself on re-runs).
	_ = sess.advanceLocked(stateBlocked)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"blocker": q.Name(), "c_size": c.Len()})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request, sess *session) {
	sess.mu.Lock()
	if sess.dbg != nil || sess.joining {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "session already joined")
		return
	}
	if sess.c == nil {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "set a blocker before joining")
		return
	}
	sess.joining = true
	// Fresh tracker and done-signal per attempt: progress requests racing
	// this join observe the attempt's own counters, and SSE streams wake
	// on joinDone no matter how the attempt ends.
	prog := ssjoin.NewProgress()
	joinDone := make(chan struct{})
	sess.prog, sess.joinDone = prog, joinDone
	a, b, c := sess.a, sess.b, sess.c
	sess.mu.Unlock()
	defer func() {
		sess.mu.Lock()
		sess.joining = false
		sess.mu.Unlock()
		close(joinDone)
	}()

	opt := core.Options{
		Ctx:        r.Context(),
		Metrics:    sess.reg,
		Trace:      sess.tracer,
		Logger:     sess.log,
		Provenance: sess.prov,
	}
	opt.Join.Progress = prog
	opt.Join.K = sess.cfg.K
	opt.Join.Workers = sess.cfg.Workers
	opt.Join.ProbeWorkers = sess.cfg.ProbeWorkers
	opt.Verifier.N = sess.cfg.N
	opt.Verifier.Seed = sess.cfg.Seed
	dbg, err := core.New(a, b, c, opt)
	if err != nil {
		if r.Context().Err() != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	sess.mu.Lock()
	sess.dbg = dbg
	sess.joinedAt = time.Now()
	// sess.c was non-nil under the joining guard, so st == stateBlocked
	// and the advance cannot fail.
	_ = sess.advanceLocked(stateJoined)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"promising_attrs": dbg.Configs().Promising,
		"configs":         len(dbg.Lists()),
		"e_size":          dbg.CandidateCount(),
	})
}

// requireDebugger fetches the session's Debugger or answers 409.
func requireDebugger(w http.ResponseWriter, sess *session) (*core.Debugger, bool) {
	dbg := sess.debugger()
	if dbg == nil {
		writeError(w, http.StatusConflict, "run the join first")
		return nil, false
	}
	return dbg, true
}

func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request, sess *session) {
	dbg, ok := requireDebugger(w, sess)
	if !ok {
		return
	}
	offset := intQuery(r, "offset", 0)
	limit := intQuery(r, "limit", 50)
	if offset < 0 || limit <= 0 || limit > 1000 {
		writeError(w, http.StatusBadRequest, "want offset >= 0 and 0 < limit <= 1000")
		return
	}
	ranking := dbg.Ranking()
	total := len(ranking)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	pairs := make([]pairJSON, 0, end-offset)
	for _, p := range ranking[offset:end] {
		pairs = append(pairs, pairJSON{A: p.A, B: p.B})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total": total, "offset": offset, "pairs": pairs,
	})
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, sess *session) {
	dbg, ok := requireDebugger(w, sess)
	if !ok {
		return
	}
	if dbg.Finished() {
		writeError(w, http.StatusConflict, "session is finished")
		return
	}
	batch := dbg.Next()
	pairs := make([]shownPair, 0, len(batch))
	for _, p := range batch {
		pairs = append(pairs, shownPair{
			A: p.A, B: p.B,
			ValuesA: dbg.RowA(p.A), ValuesB: dbg.RowB(p.B),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"iteration": dbg.Iterations() + 1,
		"pairs":     pairs,
		"done":      len(batch) == 0,
	})
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request, sess *session) {
	dbg, ok := requireDebugger(w, sess)
	if !ok {
		return
	}
	var req labelsRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := dbg.Feedback(req.Labels); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"iterations":    dbg.Iterations(),
		"matches_found": len(dbg.Matches()),
		"done":          dbg.Done(),
	})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request, sess *session) {
	dbg, ok := requireDebugger(w, sess)
	if !ok {
		return
	}
	dbg.Finish()
	sess.mu.Lock()
	if err := sess.advanceLocked(stateFinished); err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	rec, record := s.sessionRecordLocked(sess)
	sess.mu.Unlock()
	// Append outside sess.mu: ledger writes are file I/O and must not
	// stall concurrent requests on this session (lockorder enforces it).
	if record {
		if err := runlog.Append(s.opt.LedgerPath, rec); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("ledger append: %v", err))
			return
		}
	}
	s.transition(sess, "finished")
	writeJSON(w, http.StatusOK, map[string]any{
		"iterations":    dbg.Iterations(),
		"matches_found": len(dbg.Matches()),
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, sess *session) {
	dbg, ok := requireDebugger(w, sess)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Canonical (telemetry-free) by default: byte-identical across
	// same-seed runs and transports. ?telemetry=1 adds this session
	// registry's snapshot, which carries wall-clock histograms.
	var err error
	if r.URL.Query().Get("telemetry") == "1" {
		err = dbg.WriteReport(w)
	} else {
		err = dbg.WriteCanonicalReport(w)
	}
	if err != nil {
		s.log.Error("report write failed", "session", sess.id, "err", err)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, sess *session) {
	dbg, ok := requireDebugger(w, sess)
	if !ok {
		return
	}
	a := intQuery(r, "a", -1)
	b := intQuery(r, "b", -1)
	if a < 0 || b < 0 {
		writeError(w, http.StatusBadRequest, "want ?a=<a_row>&b=<b_row>")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := dbg.WriteExplainPair(w, a, b); err != nil {
		s.log.Error("explain write failed", "session", sess.id, "err", err)
	}
}

// decodeJSON decodes a request body, tolerating an empty body (all
// fields default) but rejecting unknown fields and trailing garbage.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data")
	}
	return nil
}

func intQuery(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return n
}
