package oracle

import (
	"testing"
	"time"

	"matchcatcher/internal/blocker"
)

func goldSet() *blocker.PairSet {
	g := blocker.NewPairSet()
	g.Add(1, 2)
	g.Add(3, 4)
	return g
}

func TestLabelAccurate(t *testing.T) {
	u := New(goldSet(), 0, 1)
	if !u.Label(1, 2) || !u.Label(3, 4) {
		t.Error("gold pairs must label true")
	}
	if u.Label(1, 3) {
		t.Error("non-gold pair labeled true")
	}
	if u.Labeled() != 3 {
		t.Errorf("labeled = %d", u.Labeled())
	}
}

func TestLabelTimeModel(t *testing.T) {
	u := New(goldSet(), 0, 1)
	u.SecondsPerPair = 8
	for i := 0; i < 60; i++ {
		u.Label(0, 0)
	}
	// 60 pairs at 8s each = 8 minutes — inside Table 4's 7-10 minute
	// range for 3 iterations of 20 pairs.
	if got, want := u.LabelTime(), 8*time.Minute; got != want {
		t.Errorf("LabelTime = %v, want %v", got, want)
	}
	u.Reset()
	if u.Labeled() != 0 || u.LabelTime() != 0 {
		t.Error("Reset did not clear effort")
	}
}

func TestNoiseFlipsSomeLabels(t *testing.T) {
	u := New(goldSet(), 0.5, 7)
	flips := 0
	for i := 0; i < 200; i++ {
		if u.Label(1, 2) != true {
			flips++
		}
	}
	if flips < 50 || flips > 150 {
		t.Errorf("noise=0.5 flipped %d/200", flips)
	}
	// Zero noise never flips.
	u2 := New(goldSet(), 0, 7)
	for i := 0; i < 50; i++ {
		if !u2.Label(1, 2) {
			t.Fatal("zero-noise flip")
		}
	}
}
