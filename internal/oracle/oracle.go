// Package oracle provides the synthetic user of the paper's Section 6.1
// experiments: a labeler that answers match/no-match from the gold set,
// optionally with labeling noise, plus the label-time model used to report
// Table 4's "label time" column.
package oracle

import (
	"math/rand"
	"time"

	"matchcatcher/internal/blocker"
)

// User is a synthetic user backed by gold matches.
type User struct {
	gold  *blocker.PairSet
	noise float64
	rng   *rand.Rand
	// SecondsPerPair models how long a human needs to eyeball one tuple
	// pair. Table 4 reports 7-10 minutes for 3 iterations of 20 pairs,
	// i.e. roughly 8 seconds per pair, the default here.
	SecondsPerPair float64
	labeled        int
}

// New creates a synthetic user. noise is the probability any single label
// is flipped (0 reproduces the paper's accurate synthetic users).
func New(gold *blocker.PairSet, noise float64, seed int64) *User {
	return &User{gold: gold, noise: noise, rng: rand.New(rand.NewSource(seed)), SecondsPerPair: 8}
}

// Label reports whether the pair is a true match, with optional noise.
// It also counts labeling effort for LabelTime.
func (u *User) Label(a, b int) bool {
	u.labeled++
	v := u.gold.Contains(a, b)
	if u.noise > 0 && u.rng.Float64() < u.noise {
		return !v
	}
	return v
}

// Labeled returns the number of labels given so far.
func (u *User) Labeled() int { return u.labeled }

// LabelTime returns the modeled human labeling time for all labels so far.
func (u *User) LabelTime() time.Duration {
	return time.Duration(float64(u.labeled) * u.SecondsPerPair * float64(time.Second))
}

// Reset clears the effort counter (the gold set is retained).
func (u *User) Reset() { u.labeled = 0 }
